//! VIRAM processor-in-memory simulator.
//!
//! VIRAM (UC Berkeley) integrates a vector processor with 13 MB of DRAM on
//! one die (paper Section 2.1). The model here reproduces the mechanisms
//! the paper's analysis attributes performance to:
//!
//! - a 256-bit (8-word) path between the vector unit and on-chip DRAM,
//!   organized as 2 wings × 4 banks with precharge/activate costs;
//! - **four address generators**, limiting strided accesses to 4 words
//!   per cycle (vs 8 sequential);
//! - **two vector ALUs of 8 32-bit lanes each**, with floating-point
//!   executing on ALU0 only (16 int ops/cycle but 8 flops/cycle);
//! - per-instruction vector startup that is not hidden without chaining;
//! - TLB misses on large strided walks.
//!
//! The machine is *data-accurate*: kernels execute on a real vector
//! register file over the simulated DRAM contents and the outputs are
//! verified against the reference kernels.
//!
//! # Example
//!
//! ```
//! use triarch_kernels::{CornerTurnWorkload, SignalMachine};
//! use triarch_viram::Viram;
//!
//! # fn main() -> Result<(), triarch_simcore::SimError> {
//! let mut machine = Viram::new()?;
//! let workload = CornerTurnWorkload::with_dims(64, 64, 7)?;
//! let run = machine.corner_turn(&workload)?;
//! assert!(run.verification.is_ok(0.0)); // transpose is bit-exact
//! # Ok(())
//! # }
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod programs;
pub mod tlb;
pub mod vector;

pub use config::ViramConfig;
pub use vector::VectorUnit;

use triarch_kernels::{BeamSteeringWorkload, CornerTurnWorkload, CslcWorkload, SignalMachine};
use triarch_simcore::faults::FaultHook;
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{CycleBudget, KernelRun, MachineInfo, SimError};

/// The VIRAM machine: configuration plus the Table 2 identity.
#[derive(Debug, Clone)]
pub struct Viram {
    config: ViramConfig,
    info: MachineInfo,
}

impl Viram {
    /// Creates a VIRAM with the paper's parameters (200 MHz, 16 ALUs,
    /// 3.2 peak GOPS / 1.6 peak GFLOPS).
    ///
    /// # Errors
    ///
    /// Never fails for the default configuration.
    pub fn new() -> Result<Self, SimError> {
        Self::with_config(ViramConfig::paper())
    }

    /// Creates a VIRAM from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate parameters.
    pub fn with_config(config: ViramConfig) -> Result<Self, SimError> {
        config.validate()?;
        let info = config.machine_info();
        Ok(Viram { config, info })
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &ViramConfig {
        &self.config
    }
}

impl SignalMachine for Viram {
    fn info(&self) -> &MachineInfo {
        &self.info
    }

    fn set_cycle_budget(&mut self, budget: CycleBudget) {
        self.config.budget = budget;
    }

    fn corner_turn(&mut self, workload: &CornerTurnWorkload) -> Result<KernelRun, SimError> {
        programs::corner_turn::run(&self.config, workload)
    }

    fn cslc(&mut self, workload: &CslcWorkload) -> Result<KernelRun, SimError> {
        programs::cslc::run(&self.config, workload)
    }

    fn beam_steering(&mut self, workload: &BeamSteeringWorkload) -> Result<KernelRun, SimError> {
        programs::beam_steering::run(&self.config, workload)
    }

    fn corner_turn_traced(
        &mut self,
        workload: &CornerTurnWorkload,
        sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        programs::corner_turn::run_traced(&self.config, workload, sink)
    }

    fn cslc_traced(
        &mut self,
        workload: &CslcWorkload,
        sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        programs::cslc::run_traced(&self.config, workload, sink)
    }

    fn beam_steering_traced(
        &mut self,
        workload: &BeamSteeringWorkload,
        sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        programs::beam_steering::run_traced(&self.config, workload, sink)
    }

    fn corner_turn_faulted(
        &mut self,
        workload: &CornerTurnWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError> {
        programs::corner_turn::run_faulted(&self.config, workload, NullSink, faults)
    }

    fn cslc_faulted(
        &mut self,
        workload: &CslcWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError> {
        programs::cslc::run_faulted(&self.config, workload, NullSink, faults)
    }

    fn beam_steering_faulted(
        &mut self,
        workload: &BeamSteeringWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError> {
        programs::beam_steering::run_faulted(&self.config, workload, NullSink, faults)
    }
}

// Compile-time proof the engine is `Send`-clean: it is plain data
// (configuration + identity; run state lives inside each program), so a
// parallel batch driver may move it into a pool job. Adding a non-`Send`
// field breaks this assertion instead of a distant driver build.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Viram>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_kernels::WorkloadSet;

    #[test]
    fn machine_identity_matches_table2() {
        let m = Viram::new().unwrap();
        assert_eq!(m.info().name, "VIRAM");
        assert_eq!(m.info().clock.mhz(), 200.0);
        assert_eq!(m.info().alu_count, 16);
        assert!((m.info().peak_gflops - 3.2).abs() < 1e-9);
    }

    #[test]
    fn small_workloads_verify() {
        let mut m = Viram::new().unwrap();
        let w = WorkloadSet::small(1).unwrap();
        let ct = m.corner_turn(&w.corner_turn).unwrap();
        assert!(ct.verification.is_ok(0.0));
        let bs = m.beam_steering(&w.beam_steering).unwrap();
        assert!(bs.verification.is_ok(0.0));
        let cs = m.cslc(&w.cslc).unwrap();
        assert!(cs.verification.is_ok(triarch_kernels::verify::CSLC_TOLERANCE));
    }
}
