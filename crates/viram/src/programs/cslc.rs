//! VIRAM CSLC (paper Section 3.2): vectorized FFT → weight application →
//! IFFT over all sub-bands of all channels.
//!
//! Channel data, weights, intermediate spectra, and output all live in
//! on-chip DRAM in planar (separate re/im) layout; every transform runs
//! through the in-register vectorized FFT of [`super::vfft`].

use triarch_fft::Cf32;
use triarch_kernels::cslc::CslcWorkload;
use triarch_kernels::verify::verify_complex;
use triarch_simcore::faults::{FaultHook, NoFaults};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{KernelRun, SimError};

use super::vfft::{regs, VfftPlan};
use crate::config::ViramConfig;
use crate::vector::{FpOp, VectorUnit};

/// Runs the CSLC kernel on VIRAM.
///
/// # Errors
///
/// Returns [`SimError`] if the working set does not fit in on-chip DRAM or
/// the FFT length is unsupported by the vector register file.
pub fn run(cfg: &ViramConfig, workload: &CslcWorkload) -> Result<KernelRun, SimError> {
    run_traced(cfg, workload, NullSink)
}

/// Like [`run`], but emits cycle-attribution trace events into `sink`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced<S: TraceSink>(
    cfg: &ViramConfig,
    workload: &CslcWorkload,
    sink: S,
) -> Result<KernelRun, SimError> {
    run_faulted(cfg, workload, sink, NoFaults)
}

/// Like [`run_traced`], but additionally consults `faults` at every DRAM
/// transfer and applies its effects.
///
/// # Errors
///
/// Same as [`run`], plus [`SimError::DetectedFault`] /
/// [`SimError::BudgetExceeded`] from the hook and watchdog.
pub fn run_faulted<S: TraceSink, F: FaultHook>(
    cfg: &ViramConfig,
    workload: &CslcWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    let c = *workload.config();
    let n = c.fft_len;
    let hop = c.hop();
    let s_words = c.samples;
    let band_words = c.subbands * n;
    let channels = c.main_channels + c.aux_channels;

    // --- planar memory layout -------------------------------------------------
    let ch_base = |ch: usize| ch * 2 * s_words; // re plane, then im plane
    let w_base = channels * 2 * s_words;
    let weights_at = |m: usize, a: usize| w_base + (m * c.aux_channels + a) * 2 * band_words;
    let spec_base = w_base + c.main_channels * c.aux_channels * 2 * band_words;
    let spec_at = |ch: usize, s: usize| spec_base + (ch * c.subbands + s) * 2 * n;
    let out_base = spec_base + channels * 2 * band_words;
    let out_at = |m: usize, s: usize| out_base + (m * c.subbands + s) * 2 * n;
    let needed = out_base + c.main_channels * 2 * band_words;
    if needed > cfg.dram_words {
        return Err(SimError::capacity("viram on-chip DRAM", needed, cfg.dram_words));
    }

    let mut unit = VectorUnit::with_hooks(cfg, sink, faults)?;

    // Stage resident data (uncharged: inputs arrive via DMA ahead of the
    // processing interval).
    for ch in 0..channels {
        let data = if ch < c.main_channels {
            workload.main_channel(ch)
        } else {
            workload.aux_channel(ch - c.main_channels)
        };
        let re: Vec<f32> = data.iter().map(|v| v.re).collect();
        let im: Vec<f32> = data.iter().map(|v| v.im).collect();
        unit.memory_mut().write_block_f32(ch_base(ch), &re)?;
        unit.memory_mut().write_block_f32(ch_base(ch) + s_words, &im)?;
    }
    for m in 0..c.main_channels {
        for a in 0..c.aux_channels {
            let w = workload.weights(m, a);
            let re: Vec<f32> = w.iter().map(|v| v.re).collect();
            let im: Vec<f32> = w.iter().map(|v| v.im).collect();
            unit.memory_mut().write_block_f32(weights_at(m, a), &re)?;
            unit.memory_mut().write_block_f32(weights_at(m, a) + band_words, &im)?;
        }
    }

    let lo = n.min(cfg.mvl);
    let hi = n - lo;
    let load_planar =
        |unit: &mut VectorUnit<S, F>, re_addr: usize, im_addr: usize| -> Result<(), SimError> {
            unit.vload_unit(regs::DATA_A[0], re_addr, lo)?;
            unit.vload_unit(regs::DATA_A[2], im_addr, lo)?;
            if hi > 0 {
                unit.vload_unit(regs::DATA_A[1], re_addr + lo, hi)?;
                unit.vload_unit(regs::DATA_A[3], im_addr + lo, hi)?;
            }
            Ok(())
        };
    let store_planar =
        |unit: &mut VectorUnit<S, F>, re_addr: usize, im_addr: usize| -> Result<(), SimError> {
            unit.vstore_unit(regs::DATA_A[0], re_addr, lo)?;
            unit.vstore_unit(regs::DATA_A[2], im_addr, lo)?;
            if hi > 0 {
                unit.vstore_unit(regs::DATA_A[1], re_addr + lo, hi)?;
                unit.vstore_unit(regs::DATA_A[3], im_addr + lo, hi)?;
            }
            Ok(())
        };

    // --- phase 1: forward FFT of every channel window -------------------------
    let forward = VfftPlan::new(n, cfg.mvl, false)?;
    forward.load_tables(&mut unit)?;
    for ch in 0..channels {
        for s in 0..c.subbands {
            let off = s * hop;
            load_planar(&mut unit, ch_base(ch) + off, ch_base(ch) + s_words + off)?;
            forward.execute(&mut unit)?;
            store_planar(&mut unit, spec_at(ch, s), spec_at(ch, s) + n)?;
            unit.scalar(4);
        }
    }

    // --- phase 2: weight application ------------------------------------------
    // M(k) -= Σ_a W_a(k) · A_a(k); memory streaming overlaps the FP pipe.
    for m in 0..c.main_channels {
        for s in 0..c.subbands {
            unit.begin_overlap()?;
            load_planar(&mut unit, spec_at(m, s), spec_at(m, s) + n)?;
            for a in 0..c.aux_channels {
                let aux_ch = c.main_channels + a;
                let wb = weights_at(m, a) + s * n;
                // Load weights into the gathered-operand registers and the
                // aux spectrum into T/TMP registers, half a plane at a time.
                let halves: [(usize, usize, usize); 2] = [(0, lo, 0), (lo, hi, 1)];
                for &(off, len, bank) in halves.iter().filter(|h| h.1 > 0) {
                    let (w_re, w_im) = (regs::A_RE, regs::A_IM);
                    let (x_re, x_im) = (regs::B_RE, regs::B_IM);
                    unit.vload_unit(w_re, wb + off, len)?;
                    unit.vload_unit(w_im, wb + band_words + off, len)?;
                    unit.vload_unit(x_re, spec_at(aux_ch, s) + off, len)?;
                    unit.vload_unit(x_im, spec_at(aux_ch, s) + n + off, len)?;
                    // T = W * X (complex), then M -= T.
                    unit.vfp(FpOp::Mul, regs::TMP, w_re, x_re, len)?;
                    unit.vfp(FpOp::Mul, regs::TMP2, w_im, x_im, len)?;
                    unit.vfp(FpOp::Sub, regs::T_RE, regs::TMP, regs::TMP2, len)?;
                    unit.vfp(FpOp::Mul, regs::TMP, w_re, x_im, len)?;
                    unit.vfp(FpOp::Mul, regs::TMP2, w_im, x_re, len)?;
                    unit.vfp(FpOp::Add, regs::T_IM, regs::TMP, regs::TMP2, len)?;
                    // bank 0 -> regs 0 (re) and 2 (im); bank 1 -> 1 and 3.
                    let m_re = if bank == 0 { regs::DATA_A[0] } else { regs::DATA_A[1] };
                    let m_im = if bank == 0 { regs::DATA_A[2] } else { regs::DATA_A[3] };
                    unit.vfp(FpOp::Sub, m_re, m_re, regs::T_RE, len)?;
                    unit.vfp(FpOp::Sub, m_im, m_im, regs::T_IM, len)?;
                }
            }
            store_planar(&mut unit, spec_at(m, s), spec_at(m, s) + n)?;
            unit.end_overlap()?;
            unit.scalar(4);
        }
    }

    // --- phase 3: inverse FFT of every cancelled spectrum ---------------------
    let inverse = VfftPlan::new(n, cfg.mvl, true)?;
    inverse.load_tables(&mut unit)?;
    for m in 0..c.main_channels {
        for s in 0..c.subbands {
            load_planar(&mut unit, spec_at(m, s), spec_at(m, s) + n)?;
            inverse.execute(&mut unit)?;
            store_planar(&mut unit, out_at(m, s), out_at(m, s) + n)?;
            unit.scalar(4);
        }
    }

    // --- extract and verify ----------------------------------------------------
    let mut out = Vec::with_capacity(c.main_channels * band_words);
    for m in 0..c.main_channels {
        for s in 0..c.subbands {
            let re = unit.memory().read_block_f32(out_at(m, s), n)?;
            let im = unit.memory().read_block_f32(out_at(m, s) + n, n)?;
            out.extend(re.iter().zip(&im).map(|(r, i)| Cf32::new(*r, *i)));
        }
    }
    let verification = verify_complex(&out, &workload.reference_output());
    unit.finish(verification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_kernels::cslc::CslcConfig;
    use triarch_kernels::verify::CSLC_TOLERANCE;

    #[test]
    fn small_cslc_verifies() {
        let w = CslcWorkload::new(CslcConfig::small(), 4).unwrap();
        let run = run(&ViramConfig::paper(), &w).unwrap();
        assert!(run.verification.is_ok(CSLC_TOLERANCE), "{:?}", run.verification);
        assert!(run.breakdown.get("shuffle").get() > 0);
        assert!(run.breakdown.get("compute").get() > 0);
    }

    #[test]
    fn fp_restriction_shows_in_compute() {
        // FP executes at 8/cycle: at least ops/8 compute cycles.
        let w = CslcWorkload::new(CslcConfig::small(), 4).unwrap();
        let run = run(&ViramConfig::paper(), &w).unwrap();
        assert!(run.breakdown.get("compute").get() >= run.ops_executed / 16);
    }

    #[test]
    fn oversized_working_set_is_capacity_error() {
        let mut cfg = ViramConfig::paper();
        cfg.dram_words = 1024;
        let w = CslcWorkload::new(CslcConfig::small(), 4).unwrap();
        assert!(matches!(run(&cfg, &w), Err(SimError::Capacity { .. })));
    }
}
