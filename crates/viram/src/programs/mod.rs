//! Hand-"vectorized" kernel programs for VIRAM (paper Section 3).
//!
//! Each program mirrors the mapping the paper describes: blocked
//! strided-load corner turn, an in-register vectorized FFT pipeline for
//! CSLC, and a streaming vectorized beam steer.

pub mod beam_steering;
pub mod corner_turn;
pub mod cslc;
pub mod vfft;
