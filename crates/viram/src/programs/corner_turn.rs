//! VIRAM corner turn (paper Section 3.1).
//!
//! "Our VIRAM corner turn uses a blocking algorithm … Blocking allows the
//! vector registers to be used for temporary storage between the loads and
//! stores. We used strided load operations with padding added to the
//! matrix rows to avoid DRAM bank conflicts. Initial load latencies are
//! not hidden. Stores are done sequentially from the vector registers to
//! the memory."
//!
//! Mapping: a strided vector load gathers one source *column* of a row
//! panel — which is a contiguous run of one destination *row* — and a
//! unit-stride store writes it out. Two placement tricks keep DRAM row
//! costs amortized, both instances of the paper's "padding added to the
//! matrix rows to avoid DRAM bank conflicts":
//!
//! 1. each matrix row is padded so consecutive column elements rotate
//!    across all of a wing's banks, and rows are grouped into
//!    **stripe-aligned panels** so one panel's columns reuse one open DRAM
//!    row per bank;
//! 2. the source lives in wing 0 and the destination in wing 1, so the
//!    read and write streams own disjoint bank sets.

use triarch_kernels::corner_turn::CornerTurnWorkload;
use triarch_kernels::verify::verify_words;
use triarch_simcore::faults::{FaultHook, NoFaults};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{KernelRun, SimError};

use crate::config::ViramConfig;
use crate::vector::VectorUnit;

/// Padding in words added to each matrix row so consecutive column
/// elements rotate across a wing's banks (stride ≢ 0 mod banks·interleave).
pub const ROW_PAD_WORDS: usize = 8;

/// A stripe-aligned panel layout: rows are stored in groups of
/// `panel_rows`, each group starting at a DRAM row-stripe boundary.
#[derive(Debug, Clone, Copy)]
struct PanelLayout {
    base: usize,
    pitch: usize,
    panel_rows: usize,
    panel_words: usize,
}

impl PanelLayout {
    fn new(base: usize, items: usize, pitch: usize, stripe: usize, mvl: usize) -> Self {
        let panel_rows = (stripe / pitch).clamp(1, mvl).min(items.max(1));
        // A panel occupies a whole number of stripes so every panel starts
        // stripe-aligned.
        let panel_words = (panel_rows * pitch).div_ceil(stripe.max(1)) * stripe.max(1);
        PanelLayout { base, pitch, panel_rows, panel_words }
    }

    fn addr(&self, row: usize, col: usize) -> usize {
        let panel = row / self.panel_rows;
        let within = row % self.panel_rows;
        self.base + panel * self.panel_words + within * self.pitch + col
    }

    fn words(&self, rows: usize) -> usize {
        rows.div_ceil(self.panel_rows) * self.panel_words
    }
}

/// Runs the corner turn: resident in on-chip DRAM when it fits, streamed
/// from off-chip in row bands otherwise (paper Section 4.6: "If the
/// application size is larger than the on-chip DRAM, the data needs to
/// come from off-chip memory and VIRAM would lose much of its
/// advantage").
///
/// # Errors
///
/// Returns [`SimError`] if even a single row band cannot fit on chip or
/// the configuration is degenerate.
pub fn run(cfg: &ViramConfig, workload: &CornerTurnWorkload) -> Result<KernelRun, SimError> {
    run_traced(cfg, workload, NullSink)
}

/// Like [`run`], but emits cycle-attribution trace events into `sink`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced<S: TraceSink>(
    cfg: &ViramConfig,
    workload: &CornerTurnWorkload,
    sink: S,
) -> Result<KernelRun, SimError> {
    run_faulted(cfg, workload, sink, NoFaults)
}

/// Like [`run_traced`], but additionally consults `faults` at every DRAM
/// transfer and applies its effects.
///
/// # Errors
///
/// Same as [`run`], plus [`SimError::DetectedFault`] /
/// [`SimError::BudgetExceeded`] from the hook and watchdog.
pub fn run_faulted<S: TraceSink, F: FaultHook>(
    cfg: &ViramConfig,
    workload: &CornerTurnWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    if fits_on_chip(cfg, workload.rows(), workload.cols()) {
        resident_faulted(cfg, workload, sink, faults)
    } else {
        streaming_faulted(cfg, workload, sink, faults)
    }
}

fn fits_on_chip(cfg: &ViramConfig, rows: usize, cols: usize) -> bool {
    let stripe = cfg.dram.row_words * cfg.dram.banks_per_wing();
    let src = PanelLayout::new(0, rows, cols + ROW_PAD_WORDS, stripe, cfg.mvl);
    let dst_start =
        if cfg.dram.wings > 1 { cfg.dram.wing_words.max(src.words(rows)) } else { src.words(rows) };
    let dst = PanelLayout::new(dst_start, cols, rows + ROW_PAD_WORDS, stripe, cfg.mvl);
    src.words(rows) <= dst_start && dst_start + dst.words(cols) <= cfg.dram_words
}

/// The paper's measured configuration: the matrix is resident on chip.
///
/// # Errors
///
/// Returns [`SimError::Capacity`] when the padded matrix does not fit.
pub fn run_resident(
    cfg: &ViramConfig,
    workload: &CornerTurnWorkload,
) -> Result<KernelRun, SimError> {
    resident_faulted(cfg, workload, NullSink, NoFaults)
}

fn resident_faulted<S: TraceSink, F: FaultHook>(
    cfg: &ViramConfig,
    workload: &CornerTurnWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    let rows = workload.rows();
    let cols = workload.cols();
    let stripe = cfg.dram.row_words * cfg.dram.banks_per_wing();
    let src = PanelLayout::new(0, rows, cols + ROW_PAD_WORDS, stripe, cfg.mvl);
    // Destination in wing 1 (disjoint banks from the source stream).
    let dst_start =
        if cfg.dram.wings > 1 { cfg.dram.wing_words.max(src.words(rows)) } else { src.words(rows) };
    let dst = PanelLayout::new(dst_start, cols, rows + ROW_PAD_WORDS, stripe, cfg.mvl);
    if src.words(rows) > dst_start {
        return Err(SimError::capacity("viram wing 0", src.words(rows), dst_start));
    }
    let needed = dst_start + dst.words(cols);
    if needed > cfg.dram_words {
        return Err(SimError::capacity("viram on-chip DRAM", needed, cfg.dram_words));
    }

    let mut unit = VectorUnit::with_hooks(cfg, sink, faults)?;

    // Workload data is resident in on-chip DRAM (panel layout), as in the
    // paper: the corner turn measures on-chip bandwidth, not ingest.
    let data = workload.source_slice();
    for r in 0..rows {
        unit.memory_mut().write_block_u32(src.addr(r, 0), &data[r * cols..(r + 1) * cols])?;
    }

    transpose_on_chip(&mut unit, &src, &dst, rows, cols)?;

    // Extract the destination (dropping pad) and verify bit-exactness.
    let mut out = Vec::with_capacity(rows * cols);
    for c in 0..cols {
        out.extend(unit.memory().read_block_u32(dst.addr(c, 0), rows)?);
    }
    let verification = verify_words(&out, &workload.reference_transpose());
    unit.finish(verification)
}

/// The strided-load / unit-store panel transpose over on-chip data.
fn transpose_on_chip<S: TraceSink, F: FaultHook>(
    unit: &mut VectorUnit<S, F>,
    src: &PanelLayout,
    dst: &PanelLayout,
    rows: usize,
    cols: usize,
) -> Result<(), SimError> {
    let mut r0 = 0;
    while r0 < rows {
        let vl = src.panel_rows.min(rows - r0);
        for c in 0..cols {
            // One strided load gathers column c of the panel …
            unit.vload_strided(0, src.addr(r0, c), src.pitch, vl)?;
            // … which is a contiguous run of destination row c.
            unit.vstore_unit(0, dst.addr(c, r0), vl)?;
        }
        // Scalar loop maintenance per panel.
        unit.scalar(8);
        r0 += vl;
    }
    Ok(())
}

/// Off-chip streaming fallback: row bands DMA in at the off-chip rate,
/// transpose on chip, and DMA back out.
///
/// # Errors
///
/// Returns [`SimError::Capacity`] when even one row band cannot fit.
pub fn run_streaming(
    cfg: &ViramConfig,
    workload: &CornerTurnWorkload,
) -> Result<KernelRun, SimError> {
    streaming_faulted(cfg, workload, NullSink, NoFaults)
}

fn streaming_faulted<S: TraceSink, F: FaultHook>(
    cfg: &ViramConfig,
    workload: &CornerTurnWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    let rows = workload.rows();
    let cols = workload.cols();
    let mut band = rows;
    while band > 1 && !fits_on_chip(cfg, band, cols) {
        band /= 2;
    }
    if !fits_on_chip(cfg, band, cols) {
        return Err(SimError::capacity(
            "viram on-chip DRAM (one row band)",
            2 * (cols + ROW_PAD_WORDS),
            cfg.dram_words,
        ));
    }

    let mut unit = VectorUnit::with_hooks(cfg, sink, faults)?;
    let data = workload.source_slice();
    let mut out = vec![0u32; rows * cols];
    let stripe = cfg.dram.row_words * cfg.dram.banks_per_wing();

    let mut r0 = 0;
    while r0 < rows {
        let h = band.min(rows - r0);
        let src = PanelLayout::new(0, h, cols + ROW_PAD_WORDS, stripe, cfg.mvl);
        let dst_start =
            if cfg.dram.wings > 1 { cfg.dram.wing_words.max(src.words(h)) } else { src.words(h) };
        let dst = PanelLayout::new(dst_start, cols, h + ROW_PAD_WORDS, stripe, cfg.mvl);

        // DMA the band in through the off-chip interface.
        unit.dma(h * cols);
        for r in 0..h {
            let row = &data[(r0 + r) * cols..(r0 + r + 1) * cols];
            unit.memory_mut().write_block_u32(src.addr(r, 0), row)?;
        }

        transpose_on_chip(&mut unit, &src, &dst, h, cols)?;

        // DMA the transposed band back out and collect it.
        unit.dma(h * cols);
        for c in 0..cols {
            let strip = unit.memory().read_block_u32(dst.addr(c, 0), h)?;
            out[c * rows + r0..c * rows + r0 + h].copy_from_slice(&strip);
        }
        r0 += h;
    }

    let verification = verify_words(&out, &workload.reference_transpose());
    unit.finish(verification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_simcore::Verification;

    #[test]
    fn small_transpose_is_bit_exact() {
        let w = CornerTurnWorkload::with_dims(32, 48, 5).unwrap();
        let run = run(&ViramConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
        assert_eq!(run.mem_words, 2 * 32 * 48);
    }

    #[test]
    fn non_square_and_tiny_matrices() {
        for (r, c) in [(1usize, 1usize), (1, 64), (64, 1), (7, 13), (65, 33)] {
            let w = CornerTurnWorkload::with_dims(r, c, 1).unwrap();
            let run = run(&ViramConfig::paper(), &w).unwrap();
            assert_eq!(run.verification, Verification::BitExact, "{r}x{c}");
        }
    }

    #[test]
    fn oversized_matrix_streams_from_off_chip() {
        // 2048x2048 (16 MB) exceeds the 13 MB on-chip DRAM: the kernel
        // falls back to off-chip streaming and pays the 2-words/cycle DMA
        // toll (paper Section 4.6).
        let big = CornerTurnWorkload::with_dims(2048, 2048, 0).unwrap();
        let run_big = run(&ViramConfig::paper(), &big).unwrap();
        assert_eq!(run_big.verification, Verification::BitExact);
        assert!(run_big.breakdown.get("dma").get() > 0);
        // 4x the data of the resident 1024 case, but far more than 4x the
        // cycles: the advantage is gone.
        let resident = CornerTurnWorkload::with_dims(1024, 1024, 0).unwrap();
        let run_res = run(&ViramConfig::paper(), &resident).unwrap();
        assert_eq!(run_res.breakdown.get("dma").get(), 0);
        assert!(run_big.cycles.ratio(run_res.cycles) > 6.0);
    }

    #[test]
    fn row_wider_than_on_chip_memory_is_capacity_error() {
        let w = CornerTurnWorkload::with_dims(2, 2_000_000, 0).unwrap();
        let err = run(&ViramConfig::paper(), &w).unwrap_err();
        assert!(matches!(err, SimError::Capacity { .. }));
    }

    #[test]
    fn strided_loads_dominate_cycles() {
        let w = CornerTurnWorkload::with_dims(256, 256, 2).unwrap();
        let run = run(&ViramConfig::paper(), &w).unwrap();
        // Memory is the only real consumer; compute category is absent.
        assert!(run.breakdown.fraction("memory") > 0.5);
        assert_eq!(run.breakdown.get("compute").get(), 0);
    }

    #[test]
    fn panel_layout_is_stripe_aligned() {
        let p = PanelLayout::new(0, 1024, 1032, 8192, 64);
        assert_eq!(p.panel_rows, 7);
        assert_eq!(p.panel_words % 8192, 0);
        // Row 7 starts a new panel at a stripe boundary.
        assert_eq!(p.addr(7, 0) % 8192, 0);
        assert_eq!(p.addr(3, 5), 3 * 1032 + 5);
    }
}
