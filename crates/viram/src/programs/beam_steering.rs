//! VIRAM beam steering (paper Section 3.3): "we used hand-vectorization
//! of the main portion of the beam steering … the data is fed to the
//! vector unit, which computes output data."
//!
//! Per 64-element block: two unit-stride table loads, a short chain of
//! integer vector adds and one shift, and a unit-stride store. The chain
//! is dependent, so memory and compute do not overlap (the paper: the
//! computation lower bound is ~56% of the time, the rest is "waiting for
//! the results from previous vector operations and the cycles needed to
//! initialize the vector operations").

use triarch_kernels::beam_steering::BeamSteeringWorkload;
use triarch_kernels::verify::verify_words;
use triarch_simcore::faults::{FaultHook, NoFaults};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{KernelRun, SimError};

use crate::config::ViramConfig;
use crate::vector::{IntOp, VectorUnit};

// Register map.
const V_CAL_A: usize = 0;
const V_CAL_B: usize = 1;
const V_SUM: usize = 2;
const V_ACC: usize = 3;
const V_RAMP: usize = 4;
const V_BASE: usize = 5;
const V_OUT: usize = 6;

/// Runs beam steering on VIRAM.
///
/// # Errors
///
/// Returns [`SimError`] if tables and output do not fit in on-chip DRAM.
pub fn run(cfg: &ViramConfig, workload: &BeamSteeringWorkload) -> Result<KernelRun, SimError> {
    run_traced(cfg, workload, NullSink)
}

/// Like [`run`], but emits cycle-attribution trace events into `sink`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced<S: TraceSink>(
    cfg: &ViramConfig,
    workload: &BeamSteeringWorkload,
    sink: S,
) -> Result<KernelRun, SimError> {
    run_faulted(cfg, workload, sink, NoFaults)
}

/// Like [`run_traced`], but additionally consults `faults` at every DRAM
/// transfer and applies its effects.
///
/// # Errors
///
/// Same as [`run`], plus [`SimError::DetectedFault`] /
/// [`SimError::BudgetExceeded`] from the hook and watchdog.
pub fn run_faulted<S: TraceSink, F: FaultHook>(
    cfg: &ViramConfig,
    workload: &BeamSteeringWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    let e = workload.elements();
    let cal_a_base = 0usize;
    let cal_b_base = e;
    let out_base = 2 * e;
    let needed = out_base + workload.outputs();
    if needed > cfg.dram_words {
        return Err(SimError::capacity("viram on-chip DRAM", needed, cfg.dram_words));
    }

    let mut unit = VectorUnit::with_hooks(cfg, sink, faults)?;
    let cal_a: Vec<u32> = workload.cal_coarse().iter().map(|&v| v as u32).collect();
    let cal_b: Vec<u32> = workload.cal_fine().iter().map(|&v| v as u32).collect();
    unit.memory_mut().write_block_u32(cal_a_base, &cal_a)?;
    unit.memory_mut().write_block_u32(cal_b_base, &cal_b)?;

    let mvl = cfg.mvl;
    for dwell in 0..workload.dwells() {
        let dwell_base = (dwell as i32).wrapping_mul(workload.dwell_stride());
        for d in 0..workload.directions() {
            let inc = workload.phase_inc()[d];
            // Per-direction phase ramp: inc·1, inc·2, …, inc·mvl.
            let ramp: Vec<u32> = (0..mvl).map(|i| inc.wrapping_mul(i as i32 + 1) as u32).collect();
            unit.vset_table(V_RAMP, &ramp)?;
            let mut e0 = 0usize;
            while e0 < e {
                let vl = mvl.min(e - e0);
                // All scalar terms fold into one splat: dir offset, dwell
                // base, steering bias, and the accumulator value entering
                // this block.
                let base = workload.dir_offset()[d]
                    .wrapping_add(dwell_base)
                    .wrapping_add(workload.steer_bias())
                    .wrapping_add(inc.wrapping_mul(e0 as i32));
                // Table loads stream while the previous block's add chain
                // drains; the dependent chain itself stays serial, so the
                // block pays max(memory, compute) plus startup waits — the
                // paper's "computation lower bound is 56% of the
                // simulation time".
                unit.begin_overlap()?;
                unit.vsplat(V_BASE, base as u32, vl)?;
                unit.vint(IntOp::Add, V_ACC, V_RAMP, V_BASE, 0, vl)?;
                unit.vload_unit(V_CAL_A, cal_a_base + e0, vl)?;
                unit.vload_unit(V_CAL_B, cal_b_base + e0, vl)?;
                unit.vint(IntOp::Add, V_SUM, V_CAL_A, V_CAL_B, 0, vl)?;
                unit.vint(IntOp::Add, V_SUM, V_SUM, V_ACC, 0, vl)?;
                unit.vint(IntOp::Shr, V_OUT, V_SUM, V_SUM, workload.shift(), vl)?;
                let out_off = out_base + (dwell * workload.directions() + d) * e + e0;
                unit.vstore_unit(V_OUT, out_off, vl)?;
                unit.end_overlap()?;
                // Result-dependency wait between the load pair and the
                // first add of the chain.
                unit.scalar(2 + cfg.vector_startup * 2);
                e0 += vl;
            }
        }
    }

    let raw = unit.memory().read_block_u32(out_base, workload.outputs())?;
    let got: Vec<i32> = raw.into_iter().map(|v| v as i32).collect();
    let verification = verify_words(&got, &workload.reference_output());
    unit.finish(verification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_simcore::Verification;

    #[test]
    fn output_is_bit_exact() {
        let w = BeamSteeringWorkload::new(200, 4, 2, 9).unwrap();
        let run = run(&ViramConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
    }

    #[test]
    fn non_multiple_of_mvl_elements() {
        let w = BeamSteeringWorkload::new(65, 3, 1, 9).unwrap();
        let run = run(&ViramConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
    }

    #[test]
    fn pipeline_bound_is_majority_but_not_all() {
        let w = BeamSteeringWorkload::paper(9).unwrap();
        let run = run(&ViramConfig::paper(), &w).unwrap();
        // The slower pipe (memory: 3 words/output at 8 words/cycle)
        // bounds each block; the paper's equivalent statement is that the
        // lower bound is ~56% of simulated time, the rest being startup
        // and dependency waits.
        let bound = run.breakdown.fraction("memory");
        assert!(bound > 0.35 && bound < 0.85, "memory fraction {bound}");
        assert!(run.breakdown.get("scalar").get() > 0, "dependency waits must appear");
    }

    #[test]
    fn capacity_error_on_tiny_dram() {
        let mut cfg = ViramConfig::paper();
        cfg.dram_words = 16;
        let w = BeamSteeringWorkload::new(200, 4, 2, 9).unwrap();
        assert!(matches!(run(&cfg, &w), Err(SimError::Capacity { .. })));
    }
}
