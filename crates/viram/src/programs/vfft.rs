//! In-register vectorized FFT for the VIRAM vector unit.
//!
//! The transform operates on planar complex data held in four vector
//! registers (re lo/hi, im lo/hi for n = 2·MVL; the hi registers are
//! unused for n ≤ MVL). Each butterfly stage gathers operand vectors with
//! register permutes, applies the twiddle multiply on the FP pipe, and
//! scatters results back — reproducing the shuffle overhead the paper
//! measures on VIRAM ("instructions … to perform the FFT shuffles
//! increase the number of cycles by a factor of 1.67").

use triarch_fft::twiddle::bit_reverse;
use triarch_simcore::faults::FaultHook;
use triarch_simcore::trace::TraceSink;
use triarch_simcore::SimError;

use crate::vector::{FpOp, VectorUnit};

/// Register map used by the vectorized FFT (and shared with the CSLC
/// weight stage).
pub mod regs {
    /// Data bank A: re lo, re hi, im lo, im hi.
    pub const DATA_A: [usize; 4] = [0, 1, 2, 3];
    /// Data bank B (ping-pong target).
    pub const DATA_B: [usize; 4] = [4, 5, 6, 7];
    /// Gathered butterfly operands.
    pub const A_RE: usize = 8;
    /// Gathered butterfly operands (imaginary).
    pub const A_IM: usize = 9;
    /// Gathered butterfly partners.
    pub const B_RE: usize = 10;
    /// Gathered butterfly partners (imaginary).
    pub const B_IM: usize = 11;
    /// Twiddled partner (real).
    pub const T_RE: usize = 12;
    /// Twiddled partner (imaginary).
    pub const T_IM: usize = 13;
    /// Scratch.
    pub const TMP: usize = 14;
    /// Scratch.
    pub const TMP2: usize = 15;
    /// Butterfly sums.
    pub const S_RE: usize = 16;
    /// Butterfly sums (imaginary).
    pub const S_IM: usize = 17;
    /// First twiddle-table register; stage `s ≥ 1` uses `TABLES + 2(s-1)`
    /// (re) and `+1` (im).
    pub const TABLES: usize = 18;
}

#[derive(Debug, Clone)]
struct StagePlan {
    gather_a: Vec<usize>,
    gather_b: Vec<usize>,
    scatter_lo: Vec<usize>,
    scatter_hi: Vec<usize>,
    w_re: Vec<u32>,
    w_im: Vec<u32>,
}

/// A planned in-register FFT of `n` points on a unit with maximum vector
/// length `mvl`.
#[derive(Debug, Clone)]
pub struct VfftPlan {
    n: usize,
    mvl: usize,
    inverse: bool,
    bitrev_lo: Vec<usize>,
    bitrev_hi: Vec<usize>,
    stages: Vec<StagePlan>,
}

impl VfftPlan {
    /// Plans an `n`-point transform.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] unless `n` is a power of two with
    /// `4 ≤ n ≤ 2·mvl` (the dataflow needs at least one full register of
    /// butterflies and at most two registers per plane).
    pub fn new(n: usize, mvl: usize, inverse: bool) -> Result<Self, SimError> {
        if !n.is_power_of_two() || n < 4 || n > 2 * mvl {
            return Err(SimError::unsupported(format!(
                "vectorized FFT supports power-of-two 4..={} points, got {n}",
                2 * mvl
            )));
        }
        let bits = n.trailing_zeros();
        let lo_len = n.min(mvl);
        let bitrev_lo: Vec<usize> = (0..lo_len).map(|i| bit_reverse(i, bits)).collect();
        let bitrev_hi: Vec<usize> = (lo_len..n).map(|i| bit_reverse(i, bits)).collect();

        let mut stages = Vec::new();
        let mut len = 2;
        while len <= n {
            let half = len / 2;
            // a-positions in ascending order and their ranks.
            let mut rank_of = vec![usize::MAX; n];
            let mut gather_a = Vec::with_capacity(n / 2);
            let mut gather_b = Vec::with_capacity(n / 2);
            let mut w_re = Vec::with_capacity(n / 2);
            let mut w_im = Vec::with_capacity(n / 2);
            #[allow(clippy::needless_range_loop)]
            // `i` is the butterfly position, not an index into a slice we iterate
            for i in 0..n {
                if i & half == 0 {
                    let r = gather_a.len();
                    rank_of[i] = r;
                    gather_a.push(i);
                    gather_b.push(i + half);
                    let k = (i & (half - 1)) * (n / len);
                    let sign = if inverse { 1.0 } else { -1.0 };
                    let theta = sign * 2.0 * std::f64::consts::PI * k as f64 / n as f64;
                    w_re.push((theta.cos() as f32).to_bits());
                    w_im.push((theta.sin() as f32).to_bits());
                }
            }
            // Scatter: output position p takes S[rank(p)] when the half
            // bit is clear, else D[rank(p - half)] (register offset +mvl).
            let scatter = |p: usize| -> usize {
                if p & half == 0 {
                    rank_of[p]
                } else {
                    mvl + rank_of[p - half]
                }
            };
            let scatter_lo: Vec<usize> = (0..lo_len).map(scatter).collect();
            let scatter_hi: Vec<usize> = (lo_len..n).map(scatter).collect();
            stages.push(StagePlan { gather_a, gather_b, scatter_lo, scatter_hi, w_re, w_im });
            len *= 2;
        }
        Ok(VfftPlan { n, mvl, inverse, bitrev_lo, bitrev_hi, stages })
    }

    /// Transform length.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of butterfly stages (`log2 n`).
    #[must_use]
    pub fn stage_count(&self) -> usize {
        self.stages.len()
    }

    /// Loads the per-stage twiddle tables into the table registers.
    /// Stage 0 (`half == 1`) multiplies by one and needs no table.
    ///
    /// # Errors
    ///
    /// Propagates register/length errors from the unit.
    pub fn load_tables<S: TraceSink, F: FaultHook>(
        &self,
        unit: &mut VectorUnit<S, F>,
    ) -> Result<(), SimError> {
        for (s, stage) in self.stages.iter().enumerate().skip(1) {
            let base = regs::TABLES + 2 * (s - 1);
            unit.vset_table(base, &stage.w_re)?;
            unit.vset_table(base + 1, &stage.w_im)?;
        }
        Ok(())
    }

    fn two_regs(&self) -> bool {
        self.n > self.mvl
    }

    /// Executes the transform on data in bank A (`regs::DATA_A`), leaving
    /// the result in bank A. Data layout: `re` in registers 0/1 (lo/hi)
    /// and `im` in 2/3; the hi registers are unused when `n ≤ mvl`.
    ///
    /// # Errors
    ///
    /// Propagates unit errors; table registers must have been loaded via
    /// [`load_tables`](Self::load_tables).
    pub fn execute<S: TraceSink, F: FaultHook>(
        &self,
        unit: &mut VectorUnit<S, F>,
    ) -> Result<(), SimError> {
        let nb = self.n / 2; // butterflies per stage, = gather length
        let lo_len = self.n.min(self.mvl);
        let mut cur = regs::DATA_A;
        let mut alt = regs::DATA_B;

        // Bit-reversal reordering: pure permutation into the other bank.
        unit.vperm2(alt[0], cur[0], cur[1], &self.bitrev_lo)?;
        unit.vperm2(alt[2], cur[2], cur[3], &self.bitrev_lo)?;
        if self.two_regs() {
            unit.vperm2(alt[1], cur[0], cur[1], &self.bitrev_hi)?;
            unit.vperm2(alt[3], cur[2], cur[3], &self.bitrev_hi)?;
        }
        std::mem::swap(&mut cur, &mut alt);

        for (s, stage) in self.stages.iter().enumerate() {
            // Gather butterfly operands.
            unit.vperm2(regs::A_RE, cur[0], cur[1], &stage.gather_a)?;
            unit.vperm2(regs::A_IM, cur[2], cur[3], &stage.gather_a)?;
            unit.vperm2(regs::B_RE, cur[0], cur[1], &stage.gather_b)?;
            unit.vperm2(regs::B_IM, cur[2], cur[3], &stage.gather_b)?;

            let (t_re, t_im) = if s == 0 {
                // First stage twiddles are all 1: T = B.
                (regs::B_RE, regs::B_IM)
            } else {
                let w_re = regs::TABLES + 2 * (s - 1);
                let w_im = w_re + 1;
                // T = W * B (complex).
                unit.vfp(FpOp::Mul, regs::TMP, regs::B_RE, w_re, nb)?;
                unit.vfp(FpOp::Mul, regs::TMP2, regs::B_IM, w_im, nb)?;
                unit.vfp(FpOp::Sub, regs::T_RE, regs::TMP, regs::TMP2, nb)?;
                unit.vfp(FpOp::Mul, regs::TMP, regs::B_RE, w_im, nb)?;
                unit.vfp(FpOp::Mul, regs::TMP2, regs::B_IM, w_re, nb)?;
                unit.vfp(FpOp::Add, regs::T_IM, regs::TMP, regs::TMP2, nb)?;
                (regs::T_RE, regs::T_IM)
            };

            // S = A + T in S regs; D = A - T reuses the B regs.
            unit.vfp(FpOp::Add, regs::S_RE, regs::A_RE, t_re, nb)?;
            unit.vfp(FpOp::Add, regs::S_IM, regs::A_IM, t_im, nb)?;
            unit.vfp(FpOp::Sub, regs::B_RE, regs::A_RE, t_re, nb)?;
            unit.vfp(FpOp::Sub, regs::B_IM, regs::A_IM, t_im, nb)?;

            // Scatter into the other bank.
            unit.vperm2(alt[0], regs::S_RE, regs::B_RE, &stage.scatter_lo)?;
            unit.vperm2(alt[2], regs::S_IM, regs::B_IM, &stage.scatter_lo)?;
            if self.two_regs() {
                unit.vperm2(alt[1], regs::S_RE, regs::B_RE, &stage.scatter_hi)?;
                unit.vperm2(alt[3], regs::S_IM, regs::B_IM, &stage.scatter_hi)?;
            }
            std::mem::swap(&mut cur, &mut alt);
        }

        // 1/N scaling for the inverse transform.
        if self.inverse {
            let inv = (1.0 / self.n as f32).to_bits();
            unit.vsplat(regs::TMP, inv, lo_len)?;
            unit.vfp(FpOp::Mul, cur[0], cur[0], regs::TMP, lo_len)?;
            unit.vfp(FpOp::Mul, cur[2], cur[2], regs::TMP, lo_len)?;
            if self.two_regs() {
                unit.vfp(FpOp::Mul, cur[1], cur[1], regs::TMP, self.n - lo_len)?;
                unit.vfp(FpOp::Mul, cur[3], cur[3], regs::TMP, self.n - lo_len)?;
            }
        }

        // Ensure the result ends in bank A (identity copy if the stage
        // count left it in bank B).
        if cur != regs::DATA_A {
            let identity: Vec<usize> = (0..lo_len).collect();
            unit.vperm2(regs::DATA_A[0], cur[0], cur[0], &identity)?;
            unit.vperm2(regs::DATA_A[2], cur[2], cur[2], &identity)?;
            if self.two_regs() {
                unit.vperm2(regs::DATA_A[1], cur[1], cur[1], &identity)?;
                unit.vperm2(regs::DATA_A[3], cur[3], cur[3], &identity)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::ViramConfig;
    use triarch_fft::{dft_naive, Cf32};

    fn run_vfft(n: usize, input: &[Cf32], inverse: bool) -> Vec<Cf32> {
        let cfg = ViramConfig::paper();
        let mut unit = VectorUnit::new(&cfg).unwrap();
        let plan = VfftPlan::new(n, cfg.mvl, inverse).unwrap();
        plan.load_tables(&mut unit).unwrap();
        let lo = n.min(cfg.mvl);
        // Stage the planar data through DRAM and vector loads.
        let re: Vec<f32> = input.iter().map(|c| c.re).collect();
        let im: Vec<f32> = input.iter().map(|c| c.im).collect();
        unit.memory_mut().write_block_f32(0, &re).unwrap();
        unit.memory_mut().write_block_f32(n, &im).unwrap();
        unit.vload_unit(regs::DATA_A[0], 0, lo).unwrap();
        unit.vload_unit(regs::DATA_A[2], n, lo).unwrap();
        if n > lo {
            unit.vload_unit(regs::DATA_A[1], lo, n - lo).unwrap();
            unit.vload_unit(regs::DATA_A[3], n + lo, n - lo).unwrap();
        }
        plan.execute(&mut unit).unwrap();
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let (r_reg, i_reg, idx) = if i < lo {
                (regs::DATA_A[0], regs::DATA_A[2], i)
            } else {
                (regs::DATA_A[1], regs::DATA_A[3], i - lo)
            };
            out.push(Cf32::new(
                f32::from_bits(unit.reg(r_reg).unwrap()[idx]),
                f32::from_bits(unit.reg(i_reg).unwrap()[idx]),
            ));
        }
        out
    }

    fn signal(n: usize) -> Vec<Cf32> {
        (0..n).map(|j| Cf32::new((j as f32 * 0.61).sin(), (j as f32 * 0.23).cos())).collect()
    }

    #[test]
    fn matches_dft_at_64_and_128() {
        for &n in &[4usize, 16, 64, 128] {
            let x = signal(n);
            let got = run_vfft(n, &x, false);
            let want = dft_naive(&x);
            let err = got.iter().zip(&want).map(|(a, b)| a.max_abs_diff(*b)).fold(0.0f32, f32::max);
            assert!(err < 1e-3 * n as f32, "n={n} err={err}");
        }
    }

    #[test]
    fn inverse_round_trip() {
        let n = 128;
        let x = signal(n);
        let forward = run_vfft(n, &x, false);
        let back = run_vfft(n, &forward, true);
        let err = back.iter().zip(&x).map(|(a, b)| a.max_abs_diff(*b)).fold(0.0f32, f32::max);
        assert!(err < 1e-4, "round-trip err={err}");
    }

    #[test]
    fn rejects_unsupported_lengths() {
        assert!(VfftPlan::new(100, 64, false).is_err());
        assert!(VfftPlan::new(2, 64, false).is_err());
        assert!(VfftPlan::new(256, 64, false).is_err());
        let plan = VfftPlan::new(128, 64, false).unwrap();
        assert_eq!(plan.n(), 128);
        assert_eq!(plan.stage_count(), 7);
    }

    #[test]
    fn shuffle_cycles_are_charged() {
        let cfg = ViramConfig::paper();
        let mut unit = VectorUnit::new(&cfg).unwrap();
        let plan = VfftPlan::new(128, cfg.mvl, false).unwrap();
        plan.load_tables(&mut unit).unwrap();
        plan.execute(&mut unit).unwrap();
        let run = unit.finish(triarch_simcore::Verification::Unchecked).unwrap();
        assert!(run.breakdown.get("shuffle").get() > 0, "FFT must pay shuffle overhead");
        assert!(run.breakdown.get("compute").get() > 0);
    }
}
