//! A small FIFO TLB model.
//!
//! The paper attributes part of VIRAM's corner-turn overhead to TLB
//! misses ("about 21% of the total cycles are overhead due to DRAM
//! pre-charge cycles … and TLB misses"). Strided column walks touch many
//! pages per vector instruction, overwhelming a small TLB.

/// A FIFO-replacement TLB over fixed-size pages.
#[derive(Debug, Clone)]
pub struct Tlb {
    entries: Vec<usize>,
    capacity: usize,
    page_words: usize,
    next_victim: usize,
    misses: u64,
    hits: u64,
}

impl Tlb {
    /// Creates a TLB with `capacity` entries over pages of `page_words`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` or `page_words` is zero (configurations are
    /// validated upstream by `ViramConfig::validate`).
    #[must_use]
    pub fn new(capacity: usize, page_words: usize) -> Self {
        assert!(capacity > 0 && page_words > 0, "TLB needs entries and pages");
        Tlb {
            entries: Vec::with_capacity(capacity),
            capacity,
            page_words,
            next_victim: 0,
            misses: 0,
            hits: 0,
        }
    }

    /// Touches the page containing `word_addr`; returns `true` on a miss.
    pub fn access(&mut self, word_addr: usize) -> bool {
        let page = word_addr / self.page_words;
        if self.entries.contains(&page) {
            self.hits += 1;
            return false;
        }
        self.misses += 1;
        if self.entries.len() < self.capacity {
            self.entries.push(page);
        } else {
            self.entries[self.next_victim] = page;
            self.next_victim = (self.next_victim + 1) % self.capacity;
        }
        true
    }

    /// Total misses so far.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Total hits so far.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_page_hits() {
        let mut tlb = Tlb::new(4, 1024);
        assert!(tlb.access(0)); // miss
        assert!(!tlb.access(512)); // same page
        assert!(!tlb.access(1023));
        assert_eq!(tlb.misses(), 1);
        assert_eq!(tlb.hits(), 2);
    }

    #[test]
    fn fifo_eviction() {
        let mut tlb = Tlb::new(2, 10);
        assert!(tlb.access(0)); // page 0
        assert!(tlb.access(10)); // page 1
        assert!(tlb.access(20)); // page 2 evicts page 0
        assert!(tlb.access(0)); // page 0 missing again
        assert_eq!(tlb.misses(), 4);
    }

    #[test]
    fn strided_walk_thrashes_small_tlb() {
        let mut tlb = Tlb::new(4, 2048);
        // 16 pages touched round-robin: every access misses.
        for round in 0..3 {
            for p in 0..16 {
                let miss = tlb.access(p * 2048);
                if round > 0 {
                    assert!(miss, "page {p} should thrash");
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "entries")]
    fn zero_capacity_panics() {
        let _ = Tlb::new(0, 10);
    }
}
