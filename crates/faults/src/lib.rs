//! `triarch-faults` — deterministic fault injection for the triarch
//! simulators.
//!
//! The machine models in this workspace are *data-accurate*: kernels run
//! on real simulated state and their outputs are checked against reference
//! implementations. That makes them a natural substrate for studying not
//! just performance but *resilience* — what happens when the memory a
//! machine computes in (or the lanes, clusters, and tiles it computes
//! with) misbehaves.
//!
//! This crate is the engines' fault vocabulary, mirroring the design of
//! `triarch-trace`:
//!
//! - [`FaultHook`] — the dyn-safe trait the engines consult at the points
//!   where simulated state crosses a fault surface (DRAM transfers,
//!   vector-lane/cluster/tile results). The zero-cost default is
//!   [`NoFaults`], whose [`FaultHook::is_enabled`] returns `false` so an
//!   unfaulted machine pays nothing for the instrumentation.
//! - [`FaultPlan`] — a seeded, deterministic description of a fault
//!   environment: inter-arrival rate, event mix (single/double/triple bit
//!   flips, dropped and stalled transactions), ECC and retry policies, and
//!   an optional stuck-at fault in a compute domain.
//! - [`FaultInjector`] — a [`FaultHook`] that executes a plan with a
//!   [`SplitMix64`] stream, modelling SECDED ECC (single-bit corrected at
//!   a cycle cost, double-bit detected-uncorrectable, triple-bit silent)
//!   and bounded retry-with-backoff for dropped transactions, while
//!   tallying a [`FaultReport`].
//! - [`FaultOutcome`] — the four-way classification vocabulary a campaign
//!   driver assigns to each run: `Corrected`, `DetectedUncorrectable`,
//!   `SilentDataCorruption`, or `Masked`.
//!
//! The crate is dependency-free (it sits below `triarch-simcore`, which
//! re-exports it as `triarch_simcore::faults`). Engines convert a
//! [`TransferFaults::failure`] into their own typed error.
//!
//! # Example
//!
//! ```
//! use triarch_faults::{FaultDomain, FaultHook, FaultInjector, FaultPlan};
//!
//! let plan = FaultPlan::campaign(42, 0);
//! let mut injector = FaultInjector::new(plan);
//! // An engine consults the hook for a 4096-word DRAM transfer.
//! let fx = injector.transfer(FaultDomain::Dram, 0, 4096);
//! // Effects are deterministic: the same plan yields the same faults.
//! let mut again = FaultInjector::new(FaultPlan::campaign(42, 0));
//! assert_eq!(fx, again.transfer(FaultDomain::Dram, 0, 4096));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod hook;
pub mod inject;
pub mod outcome;
pub mod plan;
pub mod rng;

pub use hook::{FaultDomain, FaultHook, NoFaults, StuckFault, TransferFaults, WordFlip};
pub use inject::{FaultInjector, FaultReport};
pub use outcome::FaultOutcome;
pub use plan::{EccConfig, FaultPlan, FaultWeights, RetryConfig};
pub use rng::SplitMix64;
