//! The fault surface the engines consult: domains, effects, and the
//! [`FaultHook`] trait with its zero-cost [`NoFaults`] default.

/// Where in a machine a fault manifests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultDomain {
    /// Words crossing a DRAM interface (on-chip or off-chip).
    Dram,
    /// A vector lane (VIRAM ALU lane, AltiVec lane).
    VectorLane,
    /// An Imagine ALU cluster's output port.
    Cluster,
    /// A Raw tile's datapath.
    Tile,
}

impl FaultDomain {
    /// Short display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultDomain::Dram => "dram",
            FaultDomain::VectorLane => "vector-lane",
            FaultDomain::Cluster => "cluster",
            FaultDomain::Tile => "tile",
        }
    }
}

/// A bit-flip applied to one word of a transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WordFlip {
    /// Element index within the transfer (`0..words`); the engine maps it
    /// to an address using the transfer's own stride/pattern.
    pub offset: usize,
    /// XOR mask applied to the word (one set bit per flipped bit).
    pub xor_mask: u32,
}

/// A stuck-at fault in a compute domain, persistent for a whole run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StuckFault {
    /// Which lane/cluster/tile is stuck (engines reduce modulo their
    /// actual resource count).
    pub index: usize,
    /// Which bit of the 32-bit datapath is stuck.
    pub bit: u8,
    /// Stuck at one (`true`) or zero (`false`).
    pub stuck_one: bool,
}

impl StuckFault {
    /// Applies the stuck bit to a word.
    #[must_use]
    pub fn force(&self, word: u32) -> u32 {
        let mask = 1u32 << (self.bit % 32);
        if self.stuck_one {
            word | mask
        } else {
            word & !mask
        }
    }
}

/// What a [`FaultHook`] did to one transfer: data corruption to apply,
/// detection/recovery cycle costs to charge, and whether the transfer
/// failed outright.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransferFaults {
    /// Uncorrected bit flips the engine must apply to the transferred
    /// words (silent corruption).
    pub flips: Vec<WordFlip>,
    /// ECC detection/correction cycles to charge (breakdown category
    /// `"ecc"`).
    pub ecc_cycles: u64,
    /// Retry/backoff/stall cycles to charge (breakdown category
    /// `"retry"`).
    pub retry_cycles: u64,
    /// When set, the transfer failed unrecoverably (double-bit ECC error
    /// or retries exhausted); the engine must abort the run with its
    /// detected-fault error carrying this description.
    pub failure: Option<String>,
}

impl TransferFaults {
    /// True when the transfer saw no fault effects at all.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.flips.is_empty()
            && self.ecc_cycles == 0
            && self.retry_cycles == 0
            && self.failure.is_none()
    }
}

/// The hook engines consult where simulated state crosses a fault surface.
///
/// Dyn-safe (campaign drivers pass `&mut dyn FaultHook` through the
/// `SignalMachine` trait), with a blanket `&mut T` impl so generic engines
/// accept both concrete injectors and trait objects. Implementations must
/// be deterministic: effects may depend only on the hook's own state and
/// the consultation arguments, never on wall-clock or addresses of
/// allocations.
pub trait FaultHook {
    /// Whether any fault can ever fire. Engines gate every consultation on
    /// this so the disabled path costs one inlined constant branch.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Consulted once per memory transfer of `words` elements starting at
    /// `start_word`; returns the effects to apply.
    fn transfer(&mut self, domain: FaultDomain, start_word: usize, words: usize) -> TransferFaults;

    /// Consulted at compute points: an active stuck-at fault in `domain`,
    /// if the plan has one.
    fn stuck(&mut self, domain: FaultDomain) -> Option<StuckFault>;
}

impl<T: FaultHook + ?Sized> FaultHook for &mut T {
    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }

    fn transfer(&mut self, domain: FaultDomain, start_word: usize, words: usize) -> TransferFaults {
        (**self).transfer(domain, start_word, words)
    }

    fn stuck(&mut self, domain: FaultDomain) -> Option<StuckFault> {
        (**self).stuck(domain)
    }
}

/// The default hook: statically disabled, injects nothing.
///
/// Mirrors `triarch_trace::NullSink`: engines are generic over
/// `F: FaultHook = NoFaults`, so the unfaulted configuration is statically
/// dispatched and the `is_enabled()` gate folds to `false` at compile
/// time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultHook for NoFaults {
    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }

    #[inline(always)]
    fn transfer(
        &mut self,
        _domain: FaultDomain,
        _start_word: usize,
        _words: usize,
    ) -> TransferFaults {
        TransferFaults::default()
    }

    #[inline(always)]
    fn stuck(&mut self, _domain: FaultDomain) -> Option<StuckFault> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_faults_is_disabled_and_clean() {
        let mut h = NoFaults;
        assert!(!h.is_enabled());
        assert!(h.transfer(FaultDomain::Dram, 0, 1024).is_clean());
        assert_eq!(h.stuck(FaultDomain::Tile), None);
    }

    #[test]
    fn blanket_impl_covers_mut_and_dyn() {
        fn consult<F: FaultHook>(mut f: F) -> bool {
            f.is_enabled() || f.transfer(FaultDomain::Dram, 0, 8).is_clean()
        }
        let mut h = NoFaults;
        assert!(consult(&mut h));
        let dynref: &mut dyn FaultHook = &mut h;
        assert!(consult(dynref));
    }

    #[test]
    fn stuck_forces_bits_both_ways() {
        let one = StuckFault { index: 3, bit: 4, stuck_one: true };
        assert_eq!(one.force(0), 16);
        assert_eq!(one.force(16), 16);
        let zero = StuckFault { index: 3, bit: 4, stuck_one: false };
        assert_eq!(zero.force(0xFFFF_FFFF), 0xFFFF_FFEF);
    }

    #[test]
    fn domain_names_are_stable() {
        for (d, n) in [
            (FaultDomain::Dram, "dram"),
            (FaultDomain::VectorLane, "vector-lane"),
            (FaultDomain::Cluster, "cluster"),
            (FaultDomain::Tile, "tile"),
        ] {
            assert_eq!(d.name(), n);
        }
    }
}
