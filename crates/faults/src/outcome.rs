//! The four-way outcome vocabulary campaign drivers assign to each run.

use std::fmt;

/// How one faulted run ended, in decreasing order of severity of what the
/// fault environment got away with.
///
/// Classification priority (applied by campaign drivers):
///
/// 1. The engine returned a detected-fault or budget error →
///    [`DetectedUncorrectable`](FaultOutcome::DetectedUncorrectable).
/// 2. The run completed but verification failed →
///    [`SilentDataCorruption`](FaultOutcome::SilentDataCorruption).
/// 3. Verification passed and some fault was corrected or recovered →
///    [`Corrected`](FaultOutcome::Corrected).
/// 4. Verification passed and nothing needed recovery (faults landed in
///    dead data, or none fired) → [`Masked`](FaultOutcome::Masked).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum FaultOutcome {
    /// Faults fired but ECC/retry machinery absorbed them; outputs verify.
    Corrected,
    /// The machine detected an unrecoverable fault (double-bit ECC error,
    /// exhausted retries) or tripped its watchdog, and aborted cleanly.
    DetectedUncorrectable,
    /// The run completed "successfully" but produced wrong answers: the
    /// fault escaped every detection mechanism.
    SilentDataCorruption,
    /// Faults (if any fired) changed nothing observable; outputs verify
    /// with no recovery work done.
    Masked,
}

impl FaultOutcome {
    /// All outcomes, in display order.
    pub const ALL: [FaultOutcome; 4] = [
        FaultOutcome::Corrected,
        FaultOutcome::DetectedUncorrectable,
        FaultOutcome::SilentDataCorruption,
        FaultOutcome::Masked,
    ];

    /// Short stable name (used in sweep tables and CSV output).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            FaultOutcome::Corrected => "corrected",
            FaultOutcome::DetectedUncorrectable => "detected",
            FaultOutcome::SilentDataCorruption => "sdc",
            FaultOutcome::Masked => "masked",
        }
    }

    /// True when the run ended with the machine still trustworthy: either
    /// nothing observable happened or every fault was corrected/detected.
    #[must_use]
    pub fn is_safe(self) -> bool {
        !matches!(self, FaultOutcome::SilentDataCorruption)
    }
}

impl fmt::Display for FaultOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable_and_distinct() {
        let names: std::collections::BTreeSet<&str> =
            FaultOutcome::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(names.len(), 4);
        assert_eq!(FaultOutcome::SilentDataCorruption.name(), "sdc");
        assert_eq!(FaultOutcome::Corrected.to_string(), "corrected");
    }

    #[test]
    fn only_sdc_is_unsafe() {
        for o in FaultOutcome::ALL {
            assert_eq!(o.is_safe(), o != FaultOutcome::SilentDataCorruption);
        }
    }
}
