//! Deterministic, dependency-free random stream (splitmix64).

/// The splitmix64 generator: tiny state, full 64-bit output, and a
/// guaranteed-identical stream for a given seed on every platform — the
/// property the fault-campaign determinism tests rest on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a stream from a seed (any value, including zero).
    #[must_use]
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly-distributed bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `0..n` (returns 0 when `n == 0`).
    ///
    /// Modulo bias is irrelevant at the ranges used here (`n ≪ 2⁶⁴`).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next_u64() % n
        }
    }

    /// True with probability `num / den` (false when `den == 0`).
    #[inline]
    pub fn chance(&mut self, num: u64, den: u64) -> bool {
        den != 0 && self.below(den) < num
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_deterministic() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn known_first_value_for_zero_seed() {
        // Reference value of splitmix64(0) — guards the constants.
        let mut r = SplitMix64::new(0);
        assert_eq!(r.next_u64(), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SplitMix64::new(3);
        for _ in 0..1000 {
            assert!(r.below(17) < 17);
        }
        assert_eq!(r.below(0), 0);
    }

    #[test]
    fn chance_edges() {
        let mut r = SplitMix64::new(5);
        assert!(!r.chance(1, 0));
        assert!(r.chance(5, 5));
        assert!(!r.chance(0, 5));
    }
}
