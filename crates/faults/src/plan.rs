//! Seeded, deterministic fault-environment descriptions.

use crate::hook::{FaultDomain, StuckFault};
use crate::rng::SplitMix64;

/// SECDED-style ECC policy for DRAM words.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EccConfig {
    /// Whether ECC is present at all. Without it every flip is silent.
    pub enabled: bool,
    /// Cycles charged to correct a single-bit error.
    pub correct_cycles: u64,
    /// Cycles charged to detect (but not correct) a multi-bit error.
    pub detect_cycles: u64,
}

impl EccConfig {
    /// A typical SECDED policy: cheap correction, costlier detection path.
    #[must_use]
    pub fn secded() -> Self {
        EccConfig { enabled: true, correct_cycles: 3, detect_cycles: 12 }
    }

    /// No ECC: flips land silently.
    #[must_use]
    pub fn disabled() -> Self {
        EccConfig { enabled: false, correct_cycles: 0, detect_cycles: 0 }
    }
}

/// Bounded retry-with-backoff policy for dropped DRAM transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryConfig {
    /// Retries attempted before the transfer is declared failed.
    pub max_retries: u32,
    /// Base backoff in cycles; attempt `k` costs `backoff_cycles << (k-1)`.
    pub backoff_cycles: u64,
}

impl Default for RetryConfig {
    fn default() -> Self {
        RetryConfig { max_retries: 3, backoff_cycles: 32 }
    }
}

impl RetryConfig {
    /// Total backoff cycles spent on `attempts` exponentially-backed-off
    /// retries: `backoff · (2^attempts − 1)`, saturating.
    #[must_use]
    pub fn backoff_total(&self, attempts: u32) -> u64 {
        let doublings = if attempts >= 64 { u64::MAX } else { (1u64 << attempts) - 1 };
        self.backoff_cycles.saturating_mul(doublings)
    }
}

/// Relative weights of the fault-event mix drawn at each arrival.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultWeights {
    /// Single-bit DRAM flip (ECC-correctable).
    pub single_bit: u32,
    /// Double-bit DRAM flip (SECDED detects, cannot correct).
    pub double_bit: u32,
    /// Triple-bit DRAM flip (escapes SECDED: silent).
    pub triple_bit: u32,
    /// Dropped transaction (retried with backoff, may exhaust retries).
    pub dropped: u32,
    /// Stalled transaction (pure latency, always recovers).
    pub stalled: u32,
}

impl Default for FaultWeights {
    fn default() -> Self {
        FaultWeights { single_bit: 60, double_bit: 6, triple_bit: 6, dropped: 16, stalled: 12 }
    }
}

impl FaultWeights {
    /// Sum of all weights (the draw denominator).
    #[must_use]
    pub fn total(&self) -> u64 {
        u64::from(self.single_bit)
            + u64::from(self.double_bit)
            + u64::from(self.triple_bit)
            + u64::from(self.dropped)
            + u64::from(self.stalled)
    }
}

/// A complete, seeded description of one fault environment.
///
/// A plan is pure data: running the same plan against the same workload
/// yields byte-identical fault effects, reports, and outcomes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultPlan {
    /// Seed of the injector's random stream.
    pub seed: u64,
    /// Mean words between fault arrivals across all screened transfers
    /// (inter-arrival gaps are uniform in `1..=2·mean`).
    pub mean_words_between_faults: u64,
    /// ECC policy.
    pub ecc: EccConfig,
    /// Retry policy for dropped transactions.
    pub retry: RetryConfig,
    /// Event mix.
    pub weights: FaultWeights,
    /// Optional stuck-at fault, active in exactly one compute domain for
    /// the whole run.
    pub stuck: Option<(FaultDomain, StuckFault)>,
}

impl FaultPlan {
    /// A quiet baseline plan: SECDED ECC, default retry policy, one fault
    /// expected every ~8 Ki words, no stuck fault.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            mean_words_between_faults: 8 * 1024,
            ecc: EccConfig::secded(),
            retry: RetryConfig::default(),
            weights: FaultWeights::default(),
            stuck: None,
        }
    }

    /// Derives campaign `index` of a seeded sweep: a deterministic
    /// variation of rate, ECC presence, and stuck-fault placement so a
    /// sweep explores the outcome space instead of replaying one
    /// environment.
    #[must_use]
    pub fn campaign(seed: u64, index: u64) -> Self {
        let mut rng =
            SplitMix64::new(seed ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1));
        let mean_words_between_faults = 1u64 << (10 + rng.below(6)); // 1 Ki ..= 32 Ki words
        let ecc = if rng.chance(3, 4) { EccConfig::secded() } else { EccConfig::disabled() };
        let stuck = if rng.chance(1, 4) {
            let domain = match rng.below(3) {
                0 => FaultDomain::VectorLane,
                1 => FaultDomain::Cluster,
                _ => FaultDomain::Tile,
            };
            Some((
                domain,
                StuckFault {
                    index: rng.below(16) as usize,
                    bit: rng.below(32) as u8,
                    stuck_one: rng.chance(1, 2),
                },
            ))
        } else {
            None
        };
        FaultPlan {
            seed: rng.next_u64(),
            mean_words_between_faults,
            ecc,
            retry: RetryConfig::default(),
            weights: FaultWeights::default(),
            stuck,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_derivation_is_deterministic() {
        for index in 0..32 {
            assert_eq!(FaultPlan::campaign(99, index), FaultPlan::campaign(99, index));
        }
        assert_ne!(FaultPlan::campaign(99, 0), FaultPlan::campaign(99, 1));
        assert_ne!(FaultPlan::campaign(99, 0), FaultPlan::campaign(100, 0));
    }

    #[test]
    fn campaign_sweep_varies_the_environment() {
        let plans: Vec<FaultPlan> = (0..64).map(|i| FaultPlan::campaign(7, i)).collect();
        assert!(plans.iter().any(|p| p.ecc.enabled));
        assert!(plans.iter().any(|p| !p.ecc.enabled));
        assert!(plans.iter().any(|p| p.stuck.is_some()));
        assert!(plans.iter().any(|p| p.stuck.is_none()));
        let rates: std::collections::BTreeSet<u64> =
            plans.iter().map(|p| p.mean_words_between_faults).collect();
        assert!(rates.len() > 2, "rates should vary: {rates:?}");
    }

    #[test]
    fn backoff_totals_grow_exponentially_and_saturate() {
        let r = RetryConfig { max_retries: 3, backoff_cycles: 10 };
        assert_eq!(r.backoff_total(0), 0);
        assert_eq!(r.backoff_total(1), 10);
        assert_eq!(r.backoff_total(2), 30);
        assert_eq!(r.backoff_total(3), 70);
        assert_eq!(r.backoff_total(64), u64::MAX);
    }

    #[test]
    fn weights_total_matches_fields() {
        let w = FaultWeights::default();
        assert_eq!(
            w.total(),
            u64::from(w.single_bit)
                + u64::from(w.double_bit)
                + u64::from(w.triple_bit)
                + u64::from(w.dropped)
                + u64::from(w.stalled)
        );
        assert!(w.total() > 0);
    }
}
