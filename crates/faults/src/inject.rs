//! The deterministic fault injector: executes a [`FaultPlan`] and tallies
//! a [`FaultReport`].

use crate::hook::{FaultDomain, FaultHook, StuckFault, TransferFaults, WordFlip};
use crate::plan::FaultPlan;
use crate::rng::SplitMix64;

/// Per-run tally of everything an injector did, read by the campaign
/// driver after the run to classify the outcome.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultReport {
    /// Transfer consultations received.
    pub transfer_consultations: u64,
    /// Words screened across all transfers.
    pub words_screened: u64,
    /// Fault events that fired.
    pub injected: u64,
    /// Single-bit errors corrected by ECC.
    pub corrected: u64,
    /// Flips that landed silently in data (no ECC, or multi-bit escapes).
    pub uncorrected_flips: u64,
    /// Dropped transactions recovered within the retry budget.
    pub dropped_recovered: u64,
    /// Individual retry attempts spent on dropped transactions.
    pub retries: u64,
    /// Transactions that merely stalled (latency only).
    pub stall_events: u64,
    /// Unrecoverable failures signalled to the engine (double-bit ECC or
    /// retry exhaustion).
    pub detected_unrecoverable: u64,
    /// Stuck-at consultations that returned an active fault.
    pub stuck_consultations: u64,
}

impl FaultReport {
    /// True when a detection-or-recovery mechanism fired at least once.
    #[must_use]
    pub fn any_recovered(&self) -> bool {
        self.corrected > 0 || self.dropped_recovered > 0 || self.stall_events > 0
    }

    /// True when corruption may have reached architectural state.
    #[must_use]
    pub fn any_corruption_possible(&self) -> bool {
        self.uncorrected_flips > 0 || self.stuck_consultations > 0
    }
}

/// A [`FaultHook`] that injects the faults a [`FaultPlan`] describes.
///
/// Arrivals follow a word-count renewal process spanning transfers: gaps
/// are drawn uniformly from `1..=2·mean`, so the cost of screening a
/// transfer is `O(faults)` rather than `O(words)`. All decisions come
/// from one [`SplitMix64`] stream seeded by the plan, making a whole
/// campaign a pure function of `(plan, consultation sequence)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: SplitMix64,
    /// Words remaining until the next fault arrival.
    gap: u64,
    report: FaultReport,
}

impl FaultInjector {
    /// Builds an injector executing `plan` from the plan's seed.
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let mut rng = SplitMix64::new(plan.seed);
        let gap = Self::draw_gap(&mut rng, plan.mean_words_between_faults);
        FaultInjector { plan, rng, gap, report: FaultReport::default() }
    }

    /// The plan being executed.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// The tally so far.
    #[must_use]
    pub fn report(&self) -> &FaultReport {
        &self.report
    }

    fn draw_gap(rng: &mut SplitMix64, mean: u64) -> u64 {
        // Uniform in 1..=2·mean (mean ≈ `mean`); ≥ 1 guarantees progress.
        1 + rng.below(2 * mean.max(1))
    }

    /// A 32-bit XOR mask with exactly `bits` distinct set bits.
    fn flip_mask(rng: &mut SplitMix64, bits: u32) -> u32 {
        let mut mask = 0u32;
        while mask.count_ones() < bits {
            mask |= 1 << rng.below(32);
        }
        mask
    }

    fn inject_one(&mut self, offset: usize, start_word: usize, fx: &mut TransferFaults) {
        self.report.injected += 1;
        let total = self.plan.weights.total();
        let pick = self.rng.below(total);
        let w = self.plan.weights;
        let single = u64::from(w.single_bit);
        let double = single + u64::from(w.double_bit);
        let triple = double + u64::from(w.triple_bit);
        let dropped = triple + u64::from(w.dropped);
        if pick < single {
            if self.plan.ecc.enabled {
                fx.ecc_cycles += self.plan.ecc.correct_cycles;
                self.report.corrected += 1;
            } else {
                fx.flips.push(WordFlip { offset, xor_mask: Self::flip_mask(&mut self.rng, 1) });
                self.report.uncorrected_flips += 1;
            }
        } else if pick < double {
            if self.plan.ecc.enabled {
                fx.ecc_cycles += self.plan.ecc.detect_cycles;
                self.report.detected_unrecoverable += 1;
                if fx.failure.is_none() {
                    fx.failure = Some(format!(
                        "uncorrectable double-bit dram error at word {}",
                        start_word + offset
                    ));
                }
            } else {
                fx.flips.push(WordFlip { offset, xor_mask: Self::flip_mask(&mut self.rng, 2) });
                self.report.uncorrected_flips += 1;
            }
        } else if pick < triple {
            // Three flipped bits alias past SECDED: silent either way.
            fx.flips.push(WordFlip { offset, xor_mask: Self::flip_mask(&mut self.rng, 3) });
            self.report.uncorrected_flips += 1;
        } else if pick < dropped {
            let max = self.plan.retry.max_retries;
            let attempts = 1 + self.rng.below(u64::from(max) + 2) as u32;
            if attempts <= max {
                fx.retry_cycles += self.plan.retry.backoff_total(attempts);
                self.report.dropped_recovered += 1;
                self.report.retries += u64::from(attempts);
            } else {
                fx.retry_cycles += self.plan.retry.backoff_total(max);
                self.report.retries += u64::from(max);
                self.report.detected_unrecoverable += 1;
                if fx.failure.is_none() {
                    fx.failure = Some(format!(
                        "dram transaction at word {} dropped after {max} retries",
                        start_word + offset
                    ));
                }
            }
        } else {
            fx.retry_cycles += self.plan.retry.backoff_cycles * (1 + self.rng.below(4));
            self.report.stall_events += 1;
        }
    }
}

impl FaultHook for FaultInjector {
    fn transfer(
        &mut self,
        _domain: FaultDomain,
        start_word: usize,
        words: usize,
    ) -> TransferFaults {
        self.report.transfer_consultations += 1;
        self.report.words_screened += words as u64;
        let mut fx = TransferFaults::default();
        let mut remaining = words as u64;
        while self.gap < remaining {
            let offset = (words as u64 - remaining + self.gap) as usize;
            remaining -= self.gap;
            self.inject_one(offset, start_word, &mut fx);
            self.gap = Self::draw_gap(&mut self.rng, self.plan.mean_words_between_faults);
        }
        self.gap -= remaining;
        fx
    }

    fn stuck(&mut self, domain: FaultDomain) -> Option<StuckFault> {
        match self.plan.stuck {
            Some((d, fault)) if d == domain => {
                self.report.stuck_consultations += 1;
                Some(fault)
            }
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{EccConfig, FaultWeights};

    fn flat_plan(seed: u64, weights: FaultWeights, ecc: EccConfig) -> FaultPlan {
        FaultPlan { weights, ecc, mean_words_between_faults: 64, ..FaultPlan::new(seed) }
    }

    #[test]
    fn identical_plans_yield_identical_effect_streams() {
        let mut a = FaultInjector::new(FaultPlan::campaign(11, 3));
        let mut b = FaultInjector::new(FaultPlan::campaign(11, 3));
        for i in 0..50 {
            let fa = a.transfer(FaultDomain::Dram, i * 1000, 700 + i);
            let fb = b.transfer(FaultDomain::Dram, i * 1000, 700 + i);
            assert_eq!(fa, fb);
        }
        assert_eq!(a.report(), b.report());
    }

    #[test]
    fn arrival_rate_tracks_the_mean() {
        let mut inj = FaultInjector::new(FaultPlan::new(5));
        let mean = inj.plan().mean_words_between_faults;
        let screened = mean * 1000;
        let _ = inj.transfer(FaultDomain::Dram, 0, screened as usize);
        let injected = inj.report().injected;
        assert!(
            (700..=1400).contains(&injected),
            "expected ~1000 faults over {screened} words, got {injected}"
        );
    }

    #[test]
    fn single_bit_with_ecc_is_corrected_not_flipped() {
        let plan = flat_plan(
            1,
            FaultWeights { single_bit: 1, double_bit: 0, triple_bit: 0, dropped: 0, stalled: 0 },
            EccConfig::secded(),
        );
        let mut inj = FaultInjector::new(plan);
        let fx = inj.transfer(FaultDomain::Dram, 0, 10_000);
        assert!(fx.flips.is_empty());
        assert!(fx.ecc_cycles > 0);
        assert!(fx.failure.is_none());
        assert!(inj.report().corrected > 0);
        assert_eq!(inj.report().uncorrected_flips, 0);
    }

    #[test]
    fn single_bit_without_ecc_is_silent() {
        let plan = flat_plan(
            2,
            FaultWeights { single_bit: 1, double_bit: 0, triple_bit: 0, dropped: 0, stalled: 0 },
            EccConfig::disabled(),
        );
        let mut inj = FaultInjector::new(plan);
        let fx = inj.transfer(FaultDomain::Dram, 0, 10_000);
        assert!(!fx.flips.is_empty());
        for flip in &fx.flips {
            assert_eq!(flip.xor_mask.count_ones(), 1);
            assert!(flip.offset < 10_000);
        }
        assert_eq!(fx.ecc_cycles, 0);
    }

    #[test]
    fn double_bit_with_ecc_fails_the_transfer() {
        let plan = flat_plan(
            3,
            FaultWeights { single_bit: 0, double_bit: 1, triple_bit: 0, dropped: 0, stalled: 0 },
            EccConfig::secded(),
        );
        let mut inj = FaultInjector::new(plan);
        let fx = inj.transfer(FaultDomain::Dram, 4096, 10_000);
        assert!(fx.failure.as_deref().is_some_and(|m| m.contains("double-bit")));
        assert!(inj.report().detected_unrecoverable > 0);
    }

    #[test]
    fn triple_bit_escapes_secded() {
        let plan = flat_plan(
            4,
            FaultWeights { single_bit: 0, double_bit: 0, triple_bit: 1, dropped: 0, stalled: 0 },
            EccConfig::secded(),
        );
        let mut inj = FaultInjector::new(plan);
        let fx = inj.transfer(FaultDomain::Dram, 0, 10_000);
        assert!(!fx.flips.is_empty());
        for flip in &fx.flips {
            assert_eq!(flip.xor_mask.count_ones(), 3);
        }
        assert!(fx.failure.is_none());
    }

    #[test]
    fn dropped_transactions_retry_and_sometimes_exhaust() {
        let plan = flat_plan(
            6,
            FaultWeights { single_bit: 0, double_bit: 0, triple_bit: 0, dropped: 1, stalled: 0 },
            EccConfig::secded(),
        );
        let mut inj = FaultInjector::new(plan);
        let mut saw_exhausted = false;
        let mut saw_retry_cycles = false;
        for i in 0..64 {
            let fx = inj.transfer(FaultDomain::Dram, i * 100_000, 50_000);
            if fx.failure.as_deref().is_some_and(|m| m.contains("retries")) {
                saw_exhausted = true;
            }
            if fx.retry_cycles > 0 {
                saw_retry_cycles = true;
            }
        }
        assert!(saw_retry_cycles, "dropped transactions charged no retry cycles");
        assert!(saw_exhausted, "no dropped transaction exhausted its retries");
        assert!(inj.report().dropped_recovered > 0, "no dropped transaction recovered");
        assert!(inj.report().retries > 0);
        assert!(inj.report().detected_unrecoverable > 0);
    }

    #[test]
    fn stuck_only_answers_its_own_domain() {
        let fault = StuckFault { index: 2, bit: 7, stuck_one: true };
        let plan = FaultPlan { stuck: Some((FaultDomain::Cluster, fault)), ..FaultPlan::new(9) };
        let mut inj = FaultInjector::new(plan);
        assert_eq!(inj.stuck(FaultDomain::Cluster), Some(fault));
        assert_eq!(inj.stuck(FaultDomain::Tile), None);
        assert_eq!(inj.stuck(FaultDomain::VectorLane), None);
        assert_eq!(inj.report().stuck_consultations, 1);
    }

    #[test]
    fn gap_spans_transfers() {
        // Many small transfers must see the same total fault count as one
        // big transfer over the same word stream (same plan).
        let plan = FaultPlan::new(12);
        let mut one = FaultInjector::new(plan.clone());
        let _ = one.transfer(FaultDomain::Dram, 0, 400_000);
        let mut many = FaultInjector::new(plan);
        for i in 0..400 {
            let _ = many.transfer(FaultDomain::Dram, i * 1000, 1000);
        }
        assert_eq!(one.report().injected, many.report().injected);
    }

    #[test]
    fn report_helpers_reflect_tallies() {
        let mut r = FaultReport::default();
        assert!(!r.any_recovered());
        assert!(!r.any_corruption_possible());
        r.corrected = 1;
        assert!(r.any_recovered());
        r.stuck_consultations = 1;
        assert!(r.any_corruption_possible());
    }
}
