//! Raw configuration (paper Section 2.3 and Table 2).

use triarch_simcore::{
    ClockFrequency, CycleBudget, DramConfig, MachineInfo, SimError, ThroughputModel,
};

/// Parameters of the simulated Raw chip.
#[derive(Debug, Clone, PartialEq)]
pub struct RawConfig {
    /// Core clock in MHz (paper Table 2: 300).
    pub clock_mhz: f64,
    /// Mesh width (4 ⇒ 16 tiles).
    pub mesh_width: usize,
    /// Data words of local SRAM per tile (the 128 KB per tile includes
    /// instruction memories; ~32 KB serves as data store/cache).
    pub local_words: usize,
    /// Cache line in words for cache-mode (MIMD) execution.
    pub line_words: usize,
    /// Exposed stall cycles per cache-line miss (after overlap with
    /// execution; the paper's CSLC spends <10% of time in memory stalls).
    pub miss_stall: u64,
    /// Static-network latency between nearest neighbours (paper: 3
    /// cycles, +1 per additional hop).
    pub nn_latency: u64,
    /// Extra latency per additional hop.
    pub hop_latency: u64,
    /// Off-chip DRAM timing (28 words/cycle aggregate, Table 1).
    pub dram: DramConfig,
    /// Off-chip memory size in words.
    pub mem_words: usize,
    /// Per-phase startup cycles (loop setup, first network words in
    /// flight).
    pub phase_startup: u64,
    /// Peak single-precision GFLOPS (Table 2 reports 4.64 for 16 tiles at
    /// 300 MHz, i.e. slightly under 1 flop/tile/cycle).
    pub peak_gflops: f64,
    /// Watchdog budget on simulated cycles (default: unlimited).
    pub budget: CycleBudget,
}

impl RawConfig {
    /// The paper's Raw.
    #[must_use]
    pub fn paper() -> Self {
        RawConfig {
            clock_mhz: 300.0,
            mesh_width: 4,
            local_words: 32 * 1024 / 4,
            line_words: 8,
            miss_stall: 4,
            nn_latency: 3,
            hop_latency: 1,
            dram: DramConfig::raw_offchip(),
            mem_words: 64 * 1024 * 1024 / 4,
            phase_startup: 30,
            peak_gflops: 4.64,
            budget: CycleBudget::UNLIMITED,
        }
    }

    /// Number of tiles.
    #[must_use]
    pub fn tiles(&self) -> usize {
        self.mesh_width * self.mesh_width
    }

    /// Table 2 identity row.
    #[must_use]
    pub fn machine_info(&self) -> MachineInfo {
        MachineInfo {
            name: "Raw",
            clock: ClockFrequency::from_mhz(self.clock_mhz),
            alu_count: self.tiles() as u32,
            peak_gflops: self.peak_gflops,
            throughput: ThroughputModel::raw(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.mesh_width == 0 {
            return Err(SimError::invalid_config("raw needs at least one tile"));
        }
        if self.local_words == 0 {
            return Err(SimError::invalid_config("raw tiles need local memory"));
        }
        if self.line_words == 0 {
            return Err(SimError::invalid_config("raw cache line must be non-zero"));
        }
        if self.mem_words == 0 {
            return Err(SimError::invalid_config("raw needs off-chip memory"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_table2() {
        let cfg = RawConfig::paper();
        cfg.validate().unwrap();
        assert_eq!(cfg.tiles(), 16);
        let info = cfg.machine_info();
        assert_eq!(info.alu_count, 16);
        assert!((info.peak_gflops - 4.64).abs() < 1e-12);
    }

    #[test]
    fn validation_rejects_degenerate() {
        let mut cfg = RawConfig::paper();
        cfg.mesh_width = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RawConfig::paper();
        cfg.local_words = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = RawConfig::paper();
        cfg.line_words = 0;
        assert!(cfg.validate().is_err());
    }
}
