//! Raw tiled-architecture simulator.
//!
//! Raw (MIT) puts 16 identical tiles on a chip, each a single-issue
//! MIPS-style core with local SRAM and a switch processor, connected by
//! low-latency static networks and packetized dynamic networks (paper
//! Section 2.3). DRAM hangs off the 16 peripheral ports. The model here
//! reproduces the mechanisms the paper's analysis relies on:
//!
//! - **one instruction per cycle per tile** (load/store issue rate is the
//!   corner-turn bound: "16 instructions per cycle are executed on the
//!   Raw tiles, and the static network and DRAM ports are not a
//!   bottleneck");
//! - **per-tile local memory** used as a software-managed store (corner
//!   turn) or cache with miss stalls (MIMD CSLC);
//! - **static-network streaming** that feeds operands directly into the
//!   pipeline, eliminating loads and stores (beam steering);
//! - **data-parallel load imbalance** (73 sub-bands over 16 tiles) and
//!   the paper's perfect-balance extrapolation;
//! - aggregate off-chip bandwidth of 28 words/cycle across the ports.
//!
//! # Example
//!
//! ```
//! use triarch_kernels::{CornerTurnWorkload, SignalMachine};
//! use triarch_raw::Raw;
//!
//! # fn main() -> Result<(), triarch_simcore::SimError> {
//! let mut machine = Raw::new()?;
//! let workload = CornerTurnWorkload::with_dims(128, 128, 1)?;
//! let run = machine.corner_turn(&workload)?;
//! assert!(run.verification.is_ok(0.0));
//! # Ok(())
//! # }
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod machine;
pub mod network;
pub mod programs;

pub use config::RawConfig;
pub use machine::RawMachine;
pub use network::{PacketFormat, StaticNetwork, TileId};

use triarch_kernels::{BeamSteeringWorkload, CornerTurnWorkload, CslcWorkload, SignalMachine};
use triarch_simcore::faults::FaultHook;
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{CycleBudget, KernelRun, MachineInfo, SimError};

/// The Raw machine: configuration plus the Table 2 identity.
#[derive(Debug, Clone)]
pub struct Raw {
    config: RawConfig,
    info: MachineInfo,
}

impl Raw {
    /// Creates a Raw with the paper's parameters (300 MHz, 16 tiles,
    /// 4.64 peak GFLOPS).
    ///
    /// # Errors
    ///
    /// Never fails for the default configuration.
    pub fn new() -> Result<Self, SimError> {
        Self::with_config(RawConfig::paper())
    }

    /// Creates a Raw from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate parameters.
    pub fn with_config(config: RawConfig) -> Result<Self, SimError> {
        config.validate()?;
        let info = config.machine_info();
        Ok(Raw { config, info })
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &RawConfig {
        &self.config
    }
}

impl SignalMachine for Raw {
    fn info(&self) -> &MachineInfo {
        &self.info
    }

    fn set_cycle_budget(&mut self, budget: CycleBudget) {
        self.config.budget = budget;
    }

    fn corner_turn(&mut self, workload: &CornerTurnWorkload) -> Result<KernelRun, SimError> {
        programs::corner_turn::run(&self.config, workload)
    }

    fn cslc(&mut self, workload: &CslcWorkload) -> Result<KernelRun, SimError> {
        programs::cslc::run(&self.config, workload)
    }

    fn beam_steering(&mut self, workload: &BeamSteeringWorkload) -> Result<KernelRun, SimError> {
        programs::beam_steering::run(&self.config, workload)
    }

    fn corner_turn_traced(
        &mut self,
        workload: &CornerTurnWorkload,
        sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        programs::corner_turn::run_traced(&self.config, workload, sink)
    }

    fn cslc_traced(
        &mut self,
        workload: &CslcWorkload,
        sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        programs::cslc::run_traced(&self.config, workload, sink)
    }

    fn beam_steering_traced(
        &mut self,
        workload: &BeamSteeringWorkload,
        sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        programs::beam_steering::run_traced(&self.config, workload, sink)
    }

    fn corner_turn_faulted(
        &mut self,
        workload: &CornerTurnWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError> {
        programs::corner_turn::run_faulted(&self.config, workload, NullSink, faults)
    }

    fn cslc_faulted(
        &mut self,
        workload: &CslcWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError> {
        programs::cslc::run_faulted(&self.config, workload, NullSink, faults)
    }

    fn beam_steering_faulted(
        &mut self,
        workload: &BeamSteeringWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError> {
        programs::beam_steering::run_faulted(&self.config, workload, NullSink, faults)
    }
}

// Compile-time proof the engine is `Send`-clean: it is plain data
// (configuration + identity; run state lives inside each program), so a
// parallel batch driver may move it into a pool job. Adding a non-`Send`
// field breaks this assertion instead of a distant driver build.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Raw>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_kernels::WorkloadSet;

    #[test]
    fn machine_identity_matches_table2() {
        let m = Raw::new().unwrap();
        assert_eq!(m.info().name, "Raw");
        assert_eq!(m.info().clock.mhz(), 300.0);
        assert_eq!(m.info().alu_count, 16);
        assert!((m.info().peak_gflops - 4.64).abs() < 1e-9);
    }

    #[test]
    fn small_workloads_verify() {
        let mut m = Raw::new().unwrap();
        let w = WorkloadSet::small(5).unwrap();
        let ct = m.corner_turn(&w.corner_turn).unwrap();
        assert!(ct.verification.is_ok(0.0));
        let bs = m.beam_steering(&w.beam_steering).unwrap();
        assert!(bs.verification.is_ok(0.0));
        let cs = m.cslc(&w.cslc).unwrap();
        assert!(cs.verification.is_ok(triarch_kernels::verify::CSLC_TOLERANCE));
    }
}
