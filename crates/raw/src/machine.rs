//! The Raw execution engine: tiles, networks, ports, and phase accounting.
//!
//! Kernel programs execute functionally against off-chip memory and
//! per-tile local stores, while recording per-tile instruction counts and
//! stalls. Work proceeds in *phases* (a round of blocks, a batch of
//! sub-bands); a phase completes when its slowest resource does:
//! `max(slowest tile, DRAM-port occupancy, network occupancy)`.

use triarch_simcore::faults::{FaultDomain, FaultHook, NoFaults, TransferFaults};
use triarch_simcore::metrics::{Histogram, Metric, MetricsReport};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{
    AccessPattern, CycleBudget, CycleLedger, Cycles, DramModel, KernelRun, SimError, Verification,
    WordMemory,
};

use crate::config::RawConfig;

/// Trace track for tile/phase execution.
const TRACK_TILES: &str = "raw.tiles";
/// Trace track for DRAM-port occupancy.
const TRACK_MEM: &str = "raw.mem";
/// Trace track for the off-chip DRAM cost decomposition.
const TRACK_DRAM: &str = "raw.dram";

#[derive(Debug, Clone, Copy, Default)]
struct TileCounters {
    issue: u64,
    stall: u64,
    net_words: u64,
}

/// The Raw machine state.
///
/// Generic over a [`TraceSink`] and a [`FaultHook`]; the defaults
/// ([`NullSink`], [`NoFaults`]) are statically dispatched, disabled, and
/// empty, so an untraced, unfaulted machine pays nothing for the
/// instrumentation.
#[derive(Debug, Clone)]
pub struct RawMachine<S: TraceSink = NullSink, F: FaultHook = NoFaults> {
    cfg: RawConfig,
    dram: DramModel,
    mem: WordMemory,
    locals: Vec<WordMemory>,
    tiles: Vec<TileCounters>,
    phase_mem: u64,
    phase_mem_overhead: u64,
    /// Cumulative issue slots across all phases (per-phase tile counters
    /// reset at `begin_phase`; these never reset).
    total_issue: u64,
    /// Cumulative exposed stall cycles across all phases.
    total_stall: u64,
    /// Cumulative static-network words across all phases.
    total_net_words: u64,
    /// Number of completed phases.
    phases: u64,
    /// Fixed-bucket histogram of per-phase charged cycles.
    phase_hist: Histogram,
    ledger: CycleLedger,
    ops: u64,
    mem_words: u64,
    in_phase: bool,
    budget: CycleBudget,
    /// Simulated activity charged so far (watchdog basis).
    spent: u64,
    /// Activity accrued inside the open phase, before `end_phase` settles
    /// it into the breakdown. Counts every resource's raw demand so a
    /// livelocked loop trips the watchdog without waiting for a phase
    /// boundary.
    phase_activity: u64,
    sink: S,
    faults: F,
}

impl RawMachine<NullSink, NoFaults> {
    /// Builds an untraced machine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate configurations.
    pub fn new(cfg: &RawConfig) -> Result<Self, SimError> {
        Self::with_sink(cfg, NullSink)
    }
}

impl<S: TraceSink> RawMachine<S, NoFaults> {
    /// Builds a machine that emits cycle-attribution events into `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate configurations.
    pub fn with_sink(cfg: &RawConfig, sink: S) -> Result<Self, SimError> {
        Self::with_hooks(cfg, sink, NoFaults)
    }
}

impl<S: TraceSink, F: FaultHook> RawMachine<S, F> {
    /// Builds a machine with both a trace sink and a fault hook.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate configurations.
    pub fn with_hooks(cfg: &RawConfig, sink: S, faults: F) -> Result<Self, SimError> {
        cfg.validate()?;
        Ok(RawMachine {
            dram: DramModel::new(cfg.dram)?,
            mem: WordMemory::new(cfg.mem_words),
            locals: vec![WordMemory::new(cfg.local_words); cfg.tiles()],
            tiles: vec![TileCounters::default(); cfg.tiles()],
            phase_mem: 0,
            phase_mem_overhead: 0,
            total_issue: 0,
            total_stall: 0,
            total_net_words: 0,
            phases: 0,
            phase_hist: Histogram::cycles(),
            ledger: CycleLedger::new(),
            ops: 0,
            mem_words: 0,
            in_phase: false,
            budget: cfg.budget,
            spent: 0,
            phase_activity: 0,
            cfg: cfg.clone(),
            sink,
            faults,
        })
    }

    /// Off-chip memory for workload setup and result extraction.
    pub fn memory_mut(&mut self) -> &mut WordMemory {
        &mut self.mem
    }

    /// Immutable off-chip memory view.
    #[must_use]
    pub fn memory(&self) -> &WordMemory {
        &self.mem
    }

    /// A tile's local store.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an out-of-range tile.
    pub fn local_mut(&mut self, tile: usize) -> Result<&mut WordMemory, SimError> {
        self.locals
            .get_mut(tile)
            .ok_or_else(|| SimError::invalid_config(format!("tile {tile} out of range")))
    }

    fn tile_mut(&mut self, tile: usize) -> Result<&mut TileCounters, SimError> {
        self.tiles
            .get_mut(tile)
            .ok_or_else(|| SimError::invalid_config(format!("tile {tile} out of range")))
    }

    /// Opens a phase.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] if one is already open.
    pub fn begin_phase(&mut self) -> Result<(), SimError> {
        if self.in_phase {
            return Err(SimError::unsupported("nested raw phases"));
        }
        self.in_phase = true;
        self.tiles.iter_mut().for_each(|t| *t = TileCounters::default());
        self.phase_mem = 0;
        self.phase_mem_overhead = 0;
        self.phase_activity = 0;
        if self.sink.is_enabled() {
            self.sink.instant(TRACK_TILES, "phase-begin", self.ledger.total().get());
        }
        Ok(())
    }

    /// Charges instruction-issue slots on a tile (compute, loads, stores,
    /// address arithmetic — everything retires at one per cycle).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for an out-of-range tile or no open phase.
    pub fn tile_issue(&mut self, tile: usize, instrs: u64) -> Result<(), SimError> {
        self.check_phase()?;
        self.tile_mut(tile)?.issue += instrs;
        self.phase_activity = self.phase_activity.saturating_add(instrs);
        self.budget.check(self.spent.saturating_add(self.phase_activity))
    }

    /// Counts arithmetic operations for utilization reporting (does not
    /// consume issue slots by itself — pair with [`tile_issue`](Self::tile_issue)).
    pub fn count_ops(&mut self, ops: u64) {
        self.ops += ops;
    }

    /// Charges exposed stall cycles on a tile (cache misses, waits).
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for an out-of-range tile or no open phase.
    pub fn tile_stall(&mut self, tile: usize, cycles: u64) -> Result<(), SimError> {
        self.check_phase()?;
        self.tile_mut(tile)?.stall += cycles;
        self.phase_activity = self.phase_activity.saturating_add(cycles);
        self.budget.check(self.spent.saturating_add(self.phase_activity))
    }

    /// Charges static-network occupancy on a tile: `words` at one word
    /// per cycle per link, after an initial `nn_latency + hops` fill.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] for an out-of-range tile or no open phase.
    pub fn tile_net_words(&mut self, tile: usize, words: u64, hops: u64) -> Result<(), SimError> {
        self.check_phase()?;
        let latency = self.cfg.nn_latency + self.cfg.hop_latency * hops.saturating_sub(1);
        let t = self.tile_mut(tile)?;
        t.net_words += words;
        // The pipeline-fill latency is exposed once per stream.
        t.stall += latency;
        self.phase_activity = self.phase_activity.saturating_add(words.saturating_add(latency));
        self.budget.check(self.spent.saturating_add(self.phase_activity))
    }

    fn check_phase(&self) -> Result<(), SimError> {
        if self.in_phase {
            Ok(())
        } else {
            Err(SimError::unsupported("raw tile activity outside a phase"))
        }
    }

    /// Performs a DRAM port transfer (functionally moving nothing — pair
    /// with explicit memory reads/writes) and accrues port occupancy for
    /// the current phase.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on bad patterns or no open phase.
    pub fn dram_traffic(
        &mut self,
        addr: usize,
        words: usize,
        pattern: AccessPattern,
    ) -> Result<(), SimError> {
        self.check_phase()?;
        // Uncounted DRAM detail on the port's own timeline (phase charges
        // only land at end_phase, on whichever resource binds).
        let cursor = self.ledger.total().get() + self.phase_mem + self.phase_mem_overhead;
        let cost = self.dram.transfer_observed(
            addr,
            words,
            pattern,
            &mut self.sink,
            TRACK_DRAM,
            cursor,
        )?;
        self.mem_words += words as u64;
        self.phase_mem += (cost.data + cost.startup).get();
        self.phase_mem_overhead += cost.overhead.get();
        self.phase_activity =
            self.phase_activity.saturating_add((cost.data + cost.startup + cost.overhead).get());

        if self.faults.is_enabled() {
            // DRAM bit flips land in off-chip memory itself (persistent
            // cell corruption observed by this and later transfers).
            let fx = self.faults.transfer(FaultDomain::Dram, addr, words);
            for flip in &fx.flips {
                let a = transfer_addr(addr, flip.offset, pattern);
                if let Ok(v) = self.mem.read_u32(a) {
                    self.mem.write_u32(a, v ^ flip.xor_mask)?;
                }
            }
            // A stuck tile corrupts the words it moves through the port:
            // transfers round-robin words across tiles, so every
            // `tiles`-th word of the region passes the faulty datapath.
            if let Some(fault) = self.faults.stuck(FaultDomain::Tile) {
                let tiles = self.cfg.tiles().max(1);
                let mut i = fault.index % tiles;
                while i < words {
                    let a = transfer_addr(addr, i, pattern);
                    if let Ok(v) = self.mem.read_u32(a) {
                        self.mem.write_u32(a, fault.force(v))?;
                    }
                    i += tiles;
                }
            }
            self.apply_fault_costs(&fx)?;
        }
        self.budget.check(self.spent.saturating_add(self.phase_activity))
    }

    /// Charges ECC/retry recovery cycles from a transfer's fault effects
    /// and converts an unrecoverable failure into a typed error.
    fn apply_fault_costs(&mut self, fx: &TransferFaults) -> Result<(), SimError> {
        self.charge(TRACK_MEM, "ecc", "ecc-correct", Cycles::new(fx.ecc_cycles));
        self.charge(TRACK_MEM, "retry", "dram-retry", Cycles::new(fx.retry_cycles));
        match &fx.failure {
            Some(what) => Err(SimError::detected_fault(what.clone())),
            None => Ok(()),
        }
    }

    /// Closes a phase. The phase costs `max(slowest tile, port occupancy,
    /// network occupancy) + phase_startup`. When `balanced` is set, the
    /// tile bound uses the *average* tile time instead of the maximum —
    /// the paper's perfect-load-balance extrapolation for CSLC — so the
    /// idle time a real 73-over-16 distribution would add is simply never
    /// charged.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] if no phase is open.
    pub fn end_phase(&mut self, balanced: bool) -> Result<(), SimError> {
        if !self.in_phase {
            return Err(SimError::unsupported("end_phase without begin_phase"));
        }
        self.in_phase = false;
        let charged_before = self.ledger.total().get();
        self.total_issue += self.tiles.iter().map(|t| t.issue).sum::<u64>();
        self.total_stall += self.tiles.iter().map(|t| t.stall).sum::<u64>();
        self.total_net_words += self.tiles.iter().map(|t| t.net_words).sum::<u64>();
        self.phases += 1;

        let totals: Vec<u64> = self.tiles.iter().map(|t| t.issue + t.stall).collect();
        let max_tile = totals.iter().copied().max().unwrap_or(0);
        let avg_tile = if totals.is_empty() {
            0
        } else {
            totals.iter().sum::<u64>().div_ceil(totals.len() as u64)
        };
        let tile_bound = if balanced { avg_tile } else { max_tile };
        let net_bound = self.tiles.iter().map(|t| t.net_words).max().unwrap_or(0);
        let mem_bound = self.phase_mem + self.phase_mem_overhead;

        // Attribute the phase to its binding resource; startup separately.
        // The charges below always sum to
        // max(tile_bound, net_bound, mem_bound) + phase_startup.
        if tile_bound >= net_bound && tile_bound >= mem_bound {
            let issue: u64 = if balanced {
                self.tiles.iter().map(|t| t.issue).sum::<u64>() / totals.len().max(1) as u64
            } else {
                self.tiles.iter().map(|t| t.issue).max().unwrap_or(0)
            };
            let stall = tile_bound - issue.min(tile_bound);
            self.charge(TRACK_TILES, "issue", "tile-issue", Cycles::new(issue.min(tile_bound)));
            self.charge(TRACK_TILES, "stall", "tile-stall", Cycles::new(stall));
        } else if mem_bound >= net_bound {
            self.charge(TRACK_MEM, "memory", "dram-port", Cycles::new(self.phase_mem));
            self.charge(
                TRACK_MEM,
                "precharge",
                "row-precharge-activate",
                Cycles::new(self.phase_mem_overhead),
            );
        } else {
            self.charge(TRACK_TILES, "network", "static-network", Cycles::new(net_bound));
        }
        self.charge(TRACK_TILES, "startup", "phase-startup", Cycles::new(self.cfg.phase_startup));
        self.phase_hist.observe(self.ledger.total().get() - charged_before);
        if self.sink.is_enabled() {
            self.sink.instant(TRACK_TILES, "phase-end", self.ledger.total().get());
        }
        self.phase_activity = 0;
        self.budget.check(self.spent)
    }

    /// Charges the breakdown and mirrors the charge as a counted span, so
    /// the trace aggregation reproduces the breakdown exactly.
    fn charge(
        &mut self,
        track: &'static str,
        category: &'static str,
        name: &'static str,
        cycles: Cycles,
    ) {
        if cycles == Cycles::ZERO {
            return;
        }
        if self.sink.is_enabled() {
            let at = self.ledger.total().get();
            self.sink.span(track, category, name, at, cycles.get());
        }
        self.spent = self.spent.saturating_add(cycles.get());
        self.ledger.charge(category, cycles);
    }

    /// Total cycles charged so far.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.ledger.total()
    }

    /// Consumes the machine into a [`KernelRun`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] if a phase is still open.
    pub fn finish(self, verification: Verification) -> Result<KernelRun, SimError> {
        if self.in_phase {
            return Err(SimError::unsupported("finish with open phase"));
        }
        let breakdown = self.ledger.into_breakdown();
        let total = breakdown.total();
        let mut metrics = MetricsReport::new();
        breakdown.export_metrics(&mut metrics, "raw.cycles");
        self.dram.export_metrics(&mut metrics, "raw.dram");
        self.budget.export_metrics(&mut metrics, "raw.budget", self.spent);
        metrics.counter("raw.net.words", self.total_net_words);
        // Per-link occupancy: each of the mesh's tiles owns one static
        // network link, and every link moves at most one word per cycle,
        // so words / (tiles × cycles) is a true ≤ 1 utilization.
        metrics.ratio(
            "raw.net.link_util",
            self.total_net_words,
            (self.cfg.tiles() as u64).saturating_mul(total.get()),
        );
        metrics.counter("raw.tiles.issue", self.total_issue);
        metrics.counter("raw.tiles.stall", self.total_stall);
        metrics.ratio(
            "raw.tiles.issue_occupancy",
            self.total_issue,
            (self.cfg.tiles() as u64).saturating_mul(total.get()),
        );
        metrics.counter("raw.phases.count", self.phases);
        metrics.counter("raw.run.ops", self.ops);
        metrics.counter("raw.run.mem_words", self.mem_words);
        metrics.bandwidth("raw.run.achieved_bw", self.mem_words, total.get());
        metrics.bandwidth("raw.run.achieved_ops", self.ops, total.get());
        metrics.set("raw.phases.cycles", Metric::Histogram(self.phase_hist));
        Ok(KernelRun {
            cycles: total,
            breakdown,
            ops_executed: self.ops,
            mem_words: self.mem_words,
            verification,
            metrics,
        })
    }
}

/// Maps a transfer-relative word index to its absolute memory address
/// under an access pattern.
fn transfer_addr(base: usize, idx: usize, pattern: AccessPattern) -> usize {
    match pattern {
        AccessPattern::Sequential => base + idx,
        AccessPattern::Strided { stride_words } => base + idx * stride_words,
        AccessPattern::Chunked { chunk_words, stride_words } => {
            base + (idx / chunk_words) * stride_words + idx % chunk_words
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> RawMachine {
        RawMachine::new(&RawConfig::paper()).unwrap()
    }

    #[test]
    fn phase_takes_slowest_tile() {
        let mut m = machine();
        m.begin_phase().unwrap();
        m.tile_issue(0, 100).unwrap();
        m.tile_issue(1, 500).unwrap();
        m.end_phase(false).unwrap();
        let total = m.cycles().get();
        assert_eq!(total, 500 + RawConfig::paper().phase_startup);
    }

    #[test]
    fn balanced_phase_uses_average() {
        let mut m = machine();
        m.begin_phase().unwrap();
        m.tile_issue(0, 1_600).unwrap(); // one busy tile
        m.end_phase(true).unwrap();
        // 1600 / 16 tiles = 100 average.
        assert_eq!(m.cycles().get(), 100 + RawConfig::paper().phase_startup);
    }

    #[test]
    fn memory_bound_phase_charges_memory() {
        let mut m = machine();
        m.begin_phase().unwrap();
        m.tile_issue(0, 10).unwrap();
        m.dram_traffic(0, 28_000, AccessPattern::Sequential).unwrap();
        m.end_phase(false).unwrap();
        assert!(m.cycles().get() >= 1_000);
        assert!(m.breakdown_get("memory") >= 1_000);
    }

    impl RawMachine {
        fn breakdown_get(&self, cat: &str) -> u64 {
            self.ledger.get(cat).get()
        }
    }

    #[test]
    fn network_stream_charges_occupancy_and_latency() {
        let mut m = machine();
        m.begin_phase().unwrap();
        m.tile_net_words(3, 1_000, 4).unwrap();
        m.end_phase(false).unwrap();
        // 1000 words at 1/cycle bound the phase; the fill latency appears
        // as a tile stall (3 + 3 extra hops = 6 cycles here).
        assert!(m.cycles().get() >= 1_000);
    }

    #[test]
    fn misuse_is_typed_error() {
        let mut m = machine();
        assert!(m.tile_issue(0, 1).is_err()); // outside phase
        assert!(m.end_phase(false).is_err());
        m.begin_phase().unwrap();
        assert!(m.begin_phase().is_err());
        assert!(m.tile_issue(99, 1).is_err());
        assert!(m.clone().finish(Verification::Unchecked).is_err());
        m.end_phase(false).unwrap();
    }

    #[test]
    fn network_bound_phase_charges_network() {
        let mut m = machine();
        m.begin_phase().unwrap();
        m.tile_issue(0, 5).unwrap();
        m.tile_net_words(1, 50_000, 2).unwrap();
        m.end_phase(false).unwrap();
        assert!(m.breakdown_get("network") >= 50_000);
        assert_eq!(m.breakdown_get("issue"), 0);
    }

    #[test]
    fn finish_carries_metrics() {
        let mut m = machine();
        m.begin_phase().unwrap();
        m.tile_issue(0, 100).unwrap();
        m.tile_net_words(1, 50, 2).unwrap();
        m.count_ops(80);
        m.end_phase(false).unwrap();
        let run = m.finish(Verification::BitExact).unwrap();
        assert_eq!(run.metrics.counter_sum("raw.cycles."), run.cycles.get());
        assert_eq!(run.metrics.counter_value("raw.net.words"), Some(50));
        assert_eq!(run.metrics.counter_value("raw.tiles.issue"), Some(100));
        assert_eq!(run.metrics.counter_value("raw.phases.count"), Some(1));
        assert_eq!(run.metrics.counter_value("raw.run.ops"), Some(80));
        assert!(run.metrics.get("raw.net.link_util").is_some());
        assert!(run.metrics.get("raw.phases.cycles").is_some());
    }

    #[test]
    fn locals_are_per_tile() {
        let mut m = machine();
        m.local_mut(0).unwrap().write_u32(0, 7).unwrap();
        m.local_mut(1).unwrap().write_u32(0, 9).unwrap();
        assert_eq!(m.local_mut(0).unwrap().read_u32(0).unwrap(), 7);
        assert_eq!(m.local_mut(1).unwrap().read_u32(0).unwrap(), 9);
        assert!(m.local_mut(99).is_err());
    }
}
