//! Raw's on-chip networks (paper Section 2.3).
//!
//! "The Raw has four networks: two static networks and two dynamic
//! networks. Communication on the static networks is performed by a
//! switch processor in each tile … one word per cycle with a latency of
//! three cycles between nearest neighbor tiles. One additional cycle of
//! latency is added for each hop … When the dynamic network is used, data
//! is sent to another tile in a packet. A packet contains header and
//! data. If the data is smaller than a packet, dummy data is added to
//! make a packet."

use triarch_simcore::SimError;

/// A tile position in the mesh.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TileId {
    /// Column (x) position.
    pub x: usize,
    /// Row (y) position.
    pub y: usize,
}

impl TileId {
    /// Builds a tile id from a linear index in a `width`-wide mesh.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for an out-of-range index.
    pub fn from_index(index: usize, width: usize) -> Result<Self, SimError> {
        if width == 0 || index >= width * width {
            return Err(SimError::invalid_config(format!(
                "tile index {index} outside {width}x{width} mesh"
            )));
        }
        Ok(TileId { x: index % width, y: index / width })
    }

    /// The linear index of this tile in a `width`-wide mesh.
    #[must_use]
    pub fn index(&self, width: usize) -> usize {
        self.y * width + self.x
    }

    /// Manhattan distance (hop count) to another tile.
    #[must_use]
    pub fn hops_to(&self, other: TileId) -> usize {
        self.x.abs_diff(other.x) + self.y.abs_diff(other.y)
    }
}

/// The static network model: dimension-ordered (X then Y) routes with
/// per-link occupancy accounting.
#[derive(Debug, Clone)]
pub struct StaticNetwork {
    width: usize,
    nn_latency: u64,
    hop_latency: u64,
    /// Occupancy (words) per directed link, indexed `[from][to-direction]`
    /// flattened as `from * 4 + dir` (0=E, 1=W, 2=S, 3=N).
    link_words: Vec<u64>,
}

impl StaticNetwork {
    /// Builds a network for a `width`-wide mesh.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a zero-width mesh.
    pub fn new(width: usize, nn_latency: u64, hop_latency: u64) -> Result<Self, SimError> {
        if width == 0 {
            return Err(SimError::invalid_config("mesh width must be non-zero"));
        }
        Ok(StaticNetwork { width, nn_latency, hop_latency, link_words: vec![0; width * width * 4] })
    }

    /// Latency of the first word of a stream from `src` to `dst`.
    #[must_use]
    pub fn latency(&self, src: TileId, dst: TileId) -> u64 {
        let hops = src.hops_to(dst) as u64;
        if hops == 0 {
            return 0;
        }
        self.nn_latency + self.hop_latency * (hops - 1)
    }

    /// Records a stream of `words` along the dimension-ordered route and
    /// returns the route's hop count.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for tiles outside the mesh.
    pub fn send(&mut self, src: TileId, dst: TileId, words: u64) -> Result<usize, SimError> {
        for t in [src, dst] {
            if t.x >= self.width || t.y >= self.width {
                return Err(SimError::invalid_config(format!(
                    "tile ({}, {}) outside {0}x{0} mesh",
                    t.x, t.y
                )));
            }
        }
        let mut cur = src;
        let mut hops = 0;
        // X first, then Y (dimension-ordered, deadlock free).
        while cur.x != dst.x {
            let dir = if dst.x > cur.x { 0 } else { 1 };
            self.link_words[cur.index(self.width) * 4 + dir] += words;
            cur.x = if dst.x > cur.x { cur.x + 1 } else { cur.x - 1 };
            hops += 1;
        }
        while cur.y != dst.y {
            let dir = if dst.y > cur.y { 2 } else { 3 };
            self.link_words[cur.index(self.width) * 4 + dir] += words;
            cur.y = if dst.y > cur.y { cur.y + 1 } else { cur.y - 1 };
            hops += 1;
        }
        Ok(hops)
    }

    /// The busiest link's total words — a lower bound on the cycles any
    /// schedule needs to drain the recorded traffic at 1 word/cycle/link.
    #[must_use]
    pub fn max_link_words(&self) -> u64 {
        self.link_words.iter().copied().max().unwrap_or(0)
    }

    /// Clears recorded traffic.
    pub fn reset(&mut self) {
        self.link_words.iter_mut().for_each(|w| *w = 0);
    }
}

/// Dynamic-network packet accounting: header word plus payload, padded to
/// the minimum packet size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketFormat {
    /// Header words per packet.
    pub header_words: u64,
    /// Minimum payload words (short messages are padded up).
    pub min_payload_words: u64,
    /// Maximum payload words (longer messages split).
    pub max_payload_words: u64,
}

impl PacketFormat {
    /// The Raw dynamic network's format: 1 header word, payload padded to
    /// at least 2 words and split at 31 words.
    #[must_use]
    pub fn raw_dynamic() -> Self {
        PacketFormat { header_words: 1, min_payload_words: 2, max_payload_words: 31 }
    }

    /// Total words on the wire for a `payload_words` message, including
    /// headers and padding across however many packets it takes.
    ///
    /// # Panics
    ///
    /// Panics if the format is degenerate (`max_payload_words == 0`).
    #[must_use]
    pub fn wire_words(&self, payload_words: u64) -> u64 {
        assert!(self.max_payload_words > 0, "degenerate packet format");
        if payload_words == 0 {
            return 0;
        }
        let packets = payload_words.div_ceil(self.max_payload_words);
        let last_payload = payload_words - (packets - 1) * self.max_payload_words;
        let padded_last = last_payload.max(self.min_payload_words);
        self.header_words * packets + (packets - 1) * self.max_payload_words + padded_last
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tile_ids_and_hops() {
        let a = TileId::from_index(0, 4).unwrap();
        let b = TileId::from_index(15, 4).unwrap();
        assert_eq!(b, TileId { x: 3, y: 3 });
        assert_eq!(a.hops_to(b), 6);
        assert_eq!(b.index(4), 15);
        assert!(TileId::from_index(16, 4).is_err());
        assert!(TileId::from_index(0, 0).is_err());
    }

    #[test]
    fn latency_matches_paper_rule() {
        // 3 cycles nearest-neighbour, +1 per extra hop.
        let net = StaticNetwork::new(4, 3, 1).unwrap();
        let a = TileId { x: 0, y: 0 };
        assert_eq!(net.latency(a, TileId { x: 1, y: 0 }), 3);
        assert_eq!(net.latency(a, TileId { x: 2, y: 0 }), 4);
        assert_eq!(net.latency(a, TileId { x: 3, y: 3 }), 8);
        assert_eq!(net.latency(a, a), 0);
    }

    #[test]
    fn dimension_ordered_routing_counts_hops() {
        let mut net = StaticNetwork::new(4, 3, 1).unwrap();
        let hops = net.send(TileId { x: 0, y: 0 }, TileId { x: 2, y: 3 }, 10).unwrap();
        assert_eq!(hops, 5);
        assert_eq!(net.max_link_words(), 10);
        net.reset();
        assert_eq!(net.max_link_words(), 0);
    }

    #[test]
    fn contended_link_accumulates() {
        let mut net = StaticNetwork::new(4, 3, 1).unwrap();
        // Two streams crossing the same first link (0,0)->(1,0).
        net.send(TileId { x: 0, y: 0 }, TileId { x: 3, y: 0 }, 5).unwrap();
        net.send(TileId { x: 0, y: 0 }, TileId { x: 1, y: 0 }, 7).unwrap();
        assert_eq!(net.max_link_words(), 12);
    }

    #[test]
    fn out_of_mesh_send_is_error() {
        let mut net = StaticNetwork::new(2, 3, 1).unwrap();
        assert!(net.send(TileId { x: 0, y: 0 }, TileId { x: 5, y: 0 }, 1).is_err());
    }

    #[test]
    fn packet_padding_and_splitting() {
        let fmt = PacketFormat::raw_dynamic();
        assert_eq!(fmt.wire_words(0), 0);
        // 1 payload word pads to 2, plus 1 header = 3.
        assert_eq!(fmt.wire_words(1), 3);
        assert_eq!(fmt.wire_words(2), 3);
        // 31 words fit one packet: 31 + 1 header.
        assert_eq!(fmt.wire_words(31), 32);
        // 32 words split into 31 + 1(->2 padded), 2 headers.
        assert_eq!(fmt.wire_words(32), 31 + 2 + 2);
    }
}
