//! Raw beam steering (paper Sections 3.3 / 4.4): stream mode.
//!
//! "We used the static network to stream data from memory while hiding
//! memory latency. In this implementation, loads and stores are not
//! necessary and ALU utilization is very high. The Raw beam steering
//! implementation has the best performance of the three architectures
//! because of the combination of memory bandwidth and high ALU
//! utilization."

use triarch_kernels::beam_steering::BeamSteeringWorkload;
use triarch_kernels::verify::verify_words;
use triarch_simcore::faults::{FaultHook, NoFaults};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{AccessPattern, KernelRun, SimError};

use crate::config::RawConfig;
use crate::machine::RawMachine;

/// Runs beam steering on Raw.
///
/// # Errors
///
/// Returns [`SimError`] if tables and output exceed off-chip memory.
pub fn run(cfg: &RawConfig, workload: &BeamSteeringWorkload) -> Result<KernelRun, SimError> {
    run_traced(cfg, workload, NullSink)
}

/// Like [`run`], but emits cycle-attribution trace events into `sink`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced<S: TraceSink>(
    cfg: &RawConfig,
    workload: &BeamSteeringWorkload,
    sink: S,
) -> Result<KernelRun, SimError> {
    run_faulted(cfg, workload, sink, NoFaults)
}

/// Like [`run_traced`], but additionally consults `faults` at every DRAM
/// transfer and applies its effects.
///
/// # Errors
///
/// Same as [`run`], plus [`SimError::DetectedFault`] /
/// [`SimError::BudgetExceeded`] from the hook and watchdog.
pub fn run_faulted<S: TraceSink, F: FaultHook>(
    cfg: &RawConfig,
    workload: &BeamSteeringWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    let e = workload.elements();
    let cal_a_base = 0usize;
    let cal_b_base = e;
    let out_base = 2 * e;
    let needed = out_base + workload.outputs();
    if needed > cfg.mem_words {
        return Err(SimError::capacity("raw off-chip memory", needed, cfg.mem_words));
    }

    let mut m = RawMachine::with_hooks(cfg, sink, faults)?;
    let cal_a: Vec<u32> = workload.cal_coarse().iter().map(|&v| v as u32).collect();
    let cal_b: Vec<u32> = workload.cal_fine().iter().map(|&v| v as u32).collect();
    m.memory_mut().write_block_u32(cal_a_base, &cal_a)?;
    m.memory_mut().write_block_u32(cal_b_base, &cal_b)?;

    let tiles = cfg.tiles();
    let mesh_hops = (2 * (cfg.mesh_width - 1)) as u64; // worst-case port-to-tile path

    // Each tile owns a contiguous element range; calibration words stream
    // in over the static network, results stream back out.
    for dwell in 0..workload.dwells() {
        let dwell_base = (dwell as i32).wrapping_mul(workload.dwell_stride());
        m.begin_phase()?;
        for d in 0..workload.directions() {
            let inc = workload.phase_inc()[d];
            for tile in 0..tiles {
                let e0 = e * tile / tiles;
                let e1 = e * (tile + 1) / tiles;
                if e0 == e1 {
                    continue;
                }
                let count = (e1 - e0) as u64;

                // Functional: compute the owned slice of outputs.
                for elem in e0..e1 {
                    let acc = workload.steer_bias().wrapping_add(inc.wrapping_mul(elem as i32 + 1));
                    let sum = (workload.cal_coarse()[elem])
                        .wrapping_add(workload.cal_fine()[elem])
                        .wrapping_add(workload.dir_offset()[d])
                        .wrapping_add(dwell_base)
                        .wrapping_add(acc);
                    let out = sum >> workload.shift();
                    let idx = out_base + (dwell * workload.directions() + d) * e + elem;
                    m.memory_mut().write_u32(idx, out as u32)?;
                }

                // Timing: operands arrive from the network and results
                // leave on it — no loads or stores, just the 5 adds and
                // 1 shift per output.
                m.tile_issue(tile, count * 6)?;
                m.count_ops(count * 6);
                m.tile_net_words(tile, count * 3, mesh_hops)?;
            }
            // Port traffic: two table reads and one result write per
            // output, streamed sequentially.
            let n = e as u64;
            m.dram_traffic(cal_a_base, 2 * n as usize, AccessPattern::Sequential)?;
            m.dram_traffic(
                out_base + (dwell * workload.directions() + d) * e,
                e,
                AccessPattern::Sequential,
            )?;
        }
        m.end_phase(false)?;
    }

    let raw_out = m.memory().read_block_u32(out_base, workload.outputs())?;
    let got: Vec<i32> = raw_out.into_iter().map(|v| v as i32).collect();
    let verification = verify_words(&got, &workload.reference_output());
    m.finish(verification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_simcore::Verification;

    #[test]
    fn output_is_bit_exact() {
        let w = BeamSteeringWorkload::new(321, 4, 3, 11).unwrap();
        let run = run(&RawConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
    }

    #[test]
    fn no_load_store_issue_beyond_alu_ops() {
        let w = BeamSteeringWorkload::paper(11).unwrap();
        let run = run(&RawConfig::paper(), &w).unwrap();
        // Stream mode: issue is pure ALU work — 6 instructions per output
        // on the busiest tile.
        let per_tile_outputs = (1608usize.div_ceil(16) * 4) as u64; // per dwell
        let expected_issue = per_tile_outputs * 6 * 8; // 8 dwells
        let issue = run.breakdown.get("issue").get();
        assert!(issue <= expected_issue + 16, "issue {issue} vs {expected_issue}");
        // ALU utilization is very high: issue dominates everything else.
        assert!(run.breakdown.fraction("issue") > 0.8, "{}", run.breakdown);
    }

    #[test]
    fn fewer_elements_than_tiles() {
        let w = BeamSteeringWorkload::new(5, 2, 1, 0).unwrap();
        let run = run(&RawConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
    }
}
