//! Raw corner turn (paper Section 3.1).
//!
//! "Our corner turn on Raw uses one load and one store operation for each
//! DRAM-to-DRAM transfer. The algorithm … was developed to ensure that
//! all 16 Raw tiles are doing a load or store during as many cycles as
//! possible and to avoid bottlenecks in the static networks and data
//! ports. The algorithm operates on 64×64 word blocks that fit in a
//! single local tile memory. Main memory operations are all done
//! sequentially to maximize memory bandwidth since the transpose can be
//! done in local memories, where all accesses are done in a single
//! cycle."

use triarch_kernels::corner_turn::CornerTurnWorkload;
use triarch_kernels::verify::verify_words;
use triarch_simcore::faults::{FaultHook, NoFaults};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{AccessPattern, KernelRun, SimError};

use crate::config::RawConfig;
use crate::machine::RawMachine;

/// Pad words appended to both matrices' rows so chunked port transfers
/// rotate across DRAM banks.
pub const ROW_PAD_WORDS: usize = 8;

/// Runs the 16-tile blocked corner turn.
///
/// # Errors
///
/// Returns [`SimError`] if the matrices do not fit off-chip memory.
pub fn run(cfg: &RawConfig, workload: &CornerTurnWorkload) -> Result<KernelRun, SimError> {
    run_traced(cfg, workload, NullSink)
}

/// Like [`run`], but emits cycle-attribution trace events into `sink`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced<S: TraceSink>(
    cfg: &RawConfig,
    workload: &CornerTurnWorkload,
    sink: S,
) -> Result<KernelRun, SimError> {
    run_faulted(cfg, workload, sink, NoFaults)
}

/// Like [`run_traced`], but additionally consults `faults` at every DRAM
/// transfer and applies its effects.
///
/// # Errors
///
/// Same as [`run`], plus [`SimError::DetectedFault`] /
/// [`SimError::BudgetExceeded`] from the hook and watchdog.
pub fn run_faulted<S: TraceSink, F: FaultHook>(
    cfg: &RawConfig,
    workload: &CornerTurnWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    let rows = workload.rows();
    let cols = workload.cols();
    let src_pitch = cols + ROW_PAD_WORDS;
    let dst_pitch = rows + ROW_PAD_WORDS;
    let src_base = 0usize;
    let dst_base = rows * src_pitch;
    let needed = dst_base + cols * dst_pitch;
    if needed > cfg.mem_words {
        return Err(SimError::capacity("raw off-chip memory", needed, cfg.mem_words));
    }

    // Block edge: 64x64 words fit one tile's local store (paper); shrink
    // for smaller local memories or matrices.
    let block = 64usize.min((cfg.local_words as f64).sqrt() as usize).min(rows).min(cols).max(1);

    let mut m = RawMachine::with_hooks(cfg, sink, faults)?;
    let data = workload.source_slice();
    for r in 0..rows {
        m.memory_mut()
            .write_block_u32(src_base + r * src_pitch, &data[r * cols..(r + 1) * cols])?;
    }

    let row_blocks = rows.div_ceil(block);
    let col_blocks = cols.div_ceil(block);
    let tiles = cfg.tiles();
    let total_blocks = row_blocks * col_blocks;

    let mut next = 0usize;
    while next < total_blocks {
        // One round: up to one block per tile, all tiles load/storing.
        m.begin_phase()?;
        let round_end = (next + tiles).min(total_blocks);
        for (tile, b) in (next..round_end).enumerate() {
            let br = (b / col_blocks) * block;
            let bc = (b % col_blocks) * block;
            let h = block.min(rows - br);
            let w = block.min(cols - bc);

            // Load the block into the tile's local store (one load
            // instruction per word) …
            for r in 0..h {
                let row = m.memory().read_block_u32(src_base + (br + r) * src_pitch + bc, w)?;
                m.local_mut(tile)?.write_block_u32(r * w, &row)?;
            }
            m.dram_traffic(
                src_base + br * src_pitch + bc,
                h * w,
                AccessPattern::Chunked { chunk_words: w, stride_words: src_pitch },
            )?;
            m.tile_issue(tile, (h * w) as u64)?;

            // … transpose in local memory (single-cycle accesses folded
            // into the store addressing) and store it back.
            for c in 0..w {
                let mut out_row = Vec::with_capacity(h);
                for r in 0..h {
                    out_row.push(m.local_mut(tile)?.read_u32(r * w + c)?);
                }
                m.memory_mut().write_block_u32(dst_base + (bc + c) * dst_pitch + br, &out_row)?;
            }
            m.dram_traffic(
                dst_base + bc * dst_pitch + br,
                h * w,
                AccessPattern::Chunked { chunk_words: h, stride_words: dst_pitch },
            )?;
            m.tile_issue(tile, (h * w) as u64)?;
        }
        m.end_phase(false)?;
        next = round_end;
    }

    let mut out = Vec::with_capacity(rows * cols);
    for c in 0..cols {
        out.extend(m.memory().read_block_u32(dst_base + c * dst_pitch, rows)?);
    }
    let verification = verify_words(&out, &workload.reference_transpose());
    m.finish(verification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_simcore::Verification;

    #[test]
    fn small_transpose_is_bit_exact() {
        let w = CornerTurnWorkload::with_dims(96, 80, 4).unwrap();
        let run = run(&RawConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
    }

    #[test]
    fn odd_sizes_and_partial_blocks() {
        for (r, c) in [(1usize, 1usize), (65, 3), (70, 130)] {
            let w = CornerTurnWorkload::with_dims(r, c, 1).unwrap();
            let run = run(&RawConfig::paper(), &w).unwrap();
            assert_eq!(run.verification, Verification::BitExact, "{r}x{c}");
        }
    }

    #[test]
    fn issue_rate_is_the_bound_not_memory() {
        let w = CornerTurnWorkload::with_dims(256, 256, 1).unwrap();
        let run = run(&RawConfig::paper(), &w).unwrap();
        // Paper Section 4.2: load/store issue rates limit performance;
        // the DRAM ports are not a bottleneck.
        assert!(run.breakdown.fraction("issue") > 0.7, "{}", run.breakdown);
        assert_eq!(run.breakdown.get("memory").get(), 0);
        // 2 instructions per word across 16 tiles.
        let ideal = 2 * 256 * 256 / 16;
        assert!(run.cycles.get() < ideal as u64 * 13 / 10);
    }

    #[test]
    fn capacity_error_on_tiny_memory() {
        let mut cfg = RawConfig::paper();
        cfg.mem_words = 512;
        let w = CornerTurnWorkload::with_dims(64, 64, 0).unwrap();
        assert!(matches!(run(&cfg, &w), Err(SimError::Capacity { .. })));
    }
}
