//! Raw CSLC (paper Sections 3.2 / 4.3): data-parallel MIMD.
//!
//! "The Raw implementation does independent data-parallel FFTs" using a
//! C radix-2 FFT ("because it provided better performance than the
//! radix-4 FFT because of register spilling"). Sub-band sets are
//! distributed over the 16 tiles; the local memory caches the working set
//! ("less than 10% of the execution time is spent on memory stalls");
//! about 26% of cycles are loads/stores and the remainder is address and
//! loop overhead. Since 73 sets do not divide over 16 tiles, the paper
//! reports an extrapolation assuming perfect load balance, which
//! [`run`] reproduces via the machine's balanced phase accounting.

use triarch_fft::ops::radix2_ops;
use triarch_fft::{fft_radix2, ifft_radix2, Cf32};
use triarch_kernels::cslc::CslcWorkload;
use triarch_kernels::verify::verify_complex;
use triarch_simcore::faults::{FaultHook, NoFaults};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{AccessPattern, KernelRun, SimError};

use crate::config::RawConfig;
use crate::machine::RawMachine;

/// Instruction model of one radix-2 butterfly on a single-issue tile:
/// 10 flops, 8 load/store words, 8 address/loop instructions.
const BUTTERFLY_FLOPS: u64 = 10;
const BUTTERFLY_LDST: u64 = 8;
const BUTTERFLY_OVERHEAD: u64 = 8;
/// Loop instructions that remain when operands arrive from the static
/// network instead of memory (no loads, no stores, no address math).
const BUTTERFLY_STREAM_OVERHEAD: u64 = 5;

/// How sub-band data reaches the butterflies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CslcMode {
    /// The paper's measured configuration: data routed to local memories
    /// through cache misses (easy-to-program MIMD mode).
    CacheMimd,
    /// The paper's Section 4.3 projection, as a real program: "If FFT is
    /// implemented using the stream interface that uses static network,
    /// it hides the cache miss stalls, and load and store operations are
    /// not needed. A primitive implementation result suggests about 70%
    /// of FFT performance improvement."
    StreamInterface,
}

fn fft_issue(n: usize, mode: CslcMode) -> (u64, u64) {
    // (instructions, flops) for one n-point radix-2 FFT.
    let butterflies = (n as u64 / 2) * n.trailing_zeros() as u64;
    let flops = radix2_ops(n).total();
    debug_assert_eq!(flops, butterflies * BUTTERFLY_FLOPS);
    let per_butterfly = match mode {
        CslcMode::CacheMimd => BUTTERFLY_FLOPS + BUTTERFLY_LDST + BUTTERFLY_OVERHEAD,
        CslcMode::StreamInterface => BUTTERFLY_FLOPS + BUTTERFLY_STREAM_OVERHEAD,
    };
    (butterflies * per_butterfly, flops)
}

/// Runs CSLC on Raw in the paper's measured cache/MIMD mode.
///
/// # Errors
///
/// Returns [`SimError`] if the working set exceeds memory or a sub-band
/// does not fit the per-tile cache.
pub fn run(cfg: &RawConfig, workload: &CslcWorkload) -> Result<KernelRun, SimError> {
    run_with_mode(cfg, workload, CslcMode::CacheMimd)
}

/// Like [`run`], but emits cycle-attribution trace events into `sink`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced<S: TraceSink>(
    cfg: &RawConfig,
    workload: &CslcWorkload,
    sink: S,
) -> Result<KernelRun, SimError> {
    run_mode_traced(cfg, workload, CslcMode::CacheMimd, sink)
}

/// Like [`run_traced`], but additionally consults `faults` at every DRAM
/// transfer and applies its effects.
///
/// # Errors
///
/// Same as [`run`], plus [`SimError::DetectedFault`] /
/// [`SimError::BudgetExceeded`] from the hook and watchdog.
pub fn run_faulted<S: TraceSink, F: FaultHook>(
    cfg: &RawConfig,
    workload: &CslcWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    run_mode_faulted(cfg, workload, CslcMode::CacheMimd, sink, faults)
}

/// Runs CSLC on Raw in an explicit data-delivery mode.
///
/// # Errors
///
/// Returns [`SimError`] if the working set exceeds memory or a sub-band
/// does not fit the per-tile cache.
pub fn run_with_mode(
    cfg: &RawConfig,
    workload: &CslcWorkload,
    mode: CslcMode,
) -> Result<KernelRun, SimError> {
    run_mode_traced(cfg, workload, mode, NullSink)
}

fn run_mode_traced<S: TraceSink>(
    cfg: &RawConfig,
    workload: &CslcWorkload,
    mode: CslcMode,
    sink: S,
) -> Result<KernelRun, SimError> {
    run_mode_faulted(cfg, workload, mode, sink, NoFaults)
}

fn run_mode_faulted<S: TraceSink, F: FaultHook>(
    cfg: &RawConfig,
    workload: &CslcWorkload,
    mode: CslcMode,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    let c = *workload.config();
    let n = c.fft_len;
    let hop = c.hop();
    let channels = c.main_channels + c.aux_channels;

    // Off-chip layout (interleaved complex).
    let ch_base = |ch: usize| ch * c.samples * 2;
    let w_base = channels * c.samples * 2;
    let band_words = c.subbands * n * 2;
    let weights_at = |m: usize, a: usize| w_base + (m * c.aux_channels + a) * band_words;
    let out_base = w_base + c.main_channels * c.aux_channels * band_words;
    let out_at = |m: usize, s: usize| out_base + (m * c.subbands + s) * n * 2;
    let needed = out_base + c.main_channels * band_words;
    if needed > cfg.mem_words {
        return Err(SimError::capacity("raw off-chip memory", needed, cfg.mem_words));
    }
    // Working set per sub-band must fit the tile cache: channel windows,
    // weights, and output.
    let working = (channels + c.main_channels * c.aux_channels + c.main_channels) * 2 * n;
    if working > cfg.local_words {
        return Err(SimError::capacity("raw tile local memory", working, cfg.local_words));
    }

    let mut m = RawMachine::with_hooks(cfg, sink, faults)?;
    for ch in 0..channels {
        let data = if ch < c.main_channels {
            workload.main_channel(ch)
        } else {
            workload.aux_channel(ch - c.main_channels)
        };
        for (i, v) in data.iter().enumerate() {
            m.memory_mut().write_u32(ch_base(ch) + 2 * i, v.re.to_bits())?;
            m.memory_mut().write_u32(ch_base(ch) + 2 * i + 1, v.im.to_bits())?;
        }
    }
    for mc in 0..c.main_channels {
        for a in 0..c.aux_channels {
            for (i, v) in workload.weights(mc, a).iter().enumerate() {
                m.memory_mut().write_u32(weights_at(mc, a) + 2 * i, v.re.to_bits())?;
                m.memory_mut().write_u32(weights_at(mc, a) + 2 * i + 1, v.im.to_bits())?;
            }
        }
    }

    let (fft_instrs, fft_flops) = fft_issue(n, mode);
    let mesh_hops = (2 * (cfg.mesh_width - 1)) as u64;
    let read_complex =
        |m: &RawMachine<S, F>, base: usize, len: usize| -> Result<Vec<Cf32>, SimError> {
            let words = m.memory().read_block_u32(base, 2 * len)?;
            Ok(words
                .chunks_exact(2)
                .map(|p| Cf32::new(f32::from_bits(p[0]), f32::from_bits(p[1])))
                .collect())
        };

    // One balanced phase covers the whole data-parallel run (the paper's
    // perfect-load-balance extrapolation).
    m.begin_phase()?;
    for s in 0..c.subbands {
        let tile = s % cfg.tiles();

        // Working-set delivery: the DRAM ports carry the same words in
        // both modes, but the stream interface hides the per-line miss
        // stalls behind the static network.
        let traffic_words = working;
        m.dram_traffic(ch_base(0) + s * hop * 2, traffic_words, AccessPattern::Sequential)?;
        match mode {
            CslcMode::CacheMimd => {
                let miss_lines = (traffic_words as u64).div_ceil(cfg.line_words as u64);
                m.tile_stall(tile, miss_lines * cfg.miss_stall)?;
            }
            CslcMode::StreamInterface => {
                m.tile_net_words(tile, traffic_words as u64, mesh_hops)?;
            }
        }

        // Forward FFTs for all channels of this sub-band.
        let mut spectra: Vec<Vec<Cf32>> = Vec::with_capacity(channels);
        for ch in 0..channels {
            let mut window = read_complex(&m, ch_base(ch) + s * hop * 2, n)?;
            fft_radix2(&mut window);
            m.tile_issue(tile, fft_instrs)?;
            m.count_ops(fft_flops);
            spectra.push(window);
        }

        // Weight application + IFFT per main channel.
        for mc in 0..c.main_channels {
            let mut spec = spectra[mc].clone();
            for a in 0..c.aux_channels {
                let w = read_complex(&m, weights_at(mc, a) + s * n * 2, n)?;
                for k in 0..n {
                    spec[k] -= w[k] * spectra[c.main_channels + a][k];
                }
            }
            // Per (aux, bin): 8 flops plus, in cache mode, 6 ld/st words
            // and 4 address instructions (streamed operands need only a
            // short loop body).
            let weight_instrs = (c.aux_channels * n) as u64
                * match mode {
                    CslcMode::CacheMimd => 8 + 6 + 4,
                    CslcMode::StreamInterface => 8 + 3,
                };
            m.tile_issue(tile, weight_instrs)?;
            m.count_ops((c.aux_channels * n) as u64 * 8);

            ifft_radix2(&mut spec);
            m.tile_issue(tile, fft_instrs)?;
            m.count_ops(fft_flops);
            for (k, v) in spec.iter().enumerate() {
                m.memory_mut().write_u32(out_at(mc, s) + 2 * k, v.re.to_bits())?;
                m.memory_mut().write_u32(out_at(mc, s) + 2 * k + 1, v.im.to_bits())?;
            }
        }
    }
    m.end_phase(true)?;

    let mut out = Vec::with_capacity(c.main_channels * c.subbands * n);
    for mc in 0..c.main_channels {
        for s in 0..c.subbands {
            out.extend(read_complex(&m, out_at(mc, s), n)?);
        }
    }
    let verification = verify_complex(&out, &workload.reference_output());
    m.finish(verification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_kernels::cslc::CslcConfig;
    use triarch_kernels::verify::CSLC_TOLERANCE;

    #[test]
    fn small_cslc_verifies() {
        let w = CslcWorkload::new(CslcConfig::small(), 7).unwrap();
        let run = run(&RawConfig::paper(), &w).unwrap();
        assert!(run.verification.is_ok(CSLC_TOLERANCE), "{:?}", run.verification);
    }

    #[test]
    fn stream_interface_gains_roughly_seventy_percent() {
        let w = CslcWorkload::paper(7).unwrap();
        let cfg = RawConfig::paper();
        let cache = run_with_mode(&cfg, &w, CslcMode::CacheMimd).unwrap();
        let stream = run_with_mode(&cfg, &w, CslcMode::StreamInterface).unwrap();
        assert!(stream.verification.is_ok(triarch_kernels::verify::CSLC_TOLERANCE));
        let gain = cache.cycles.ratio(stream.cycles);
        // Paper §4.3 projects ~70% improvement on the FFT portion; the
        // whole kernel (FFT-dominated) lands in the same band.
        assert!(gain > 1.4 && gain < 2.1, "gain {gain:.2}");
    }

    #[test]
    fn radix2_pays_more_instructions_than_flops() {
        let (instrs, flops) = fft_issue(128, CslcMode::CacheMimd);
        // Paper: ~26% of cycles are loads/stores, the rest split between
        // flops and address/loop overhead.
        assert_eq!(flops, 4_480);
        assert!(instrs > 2 * flops && instrs < 3 * flops);
    }

    #[test]
    fn memory_stalls_stay_minor() {
        let w = CslcWorkload::new(CslcConfig::small(), 7).unwrap();
        let run = run(&RawConfig::paper(), &w).unwrap();
        // Paper: less than 10% of execution time on memory stalls — our
        // stall share is bounded well under issue.
        assert!(run.breakdown.fraction("stall") < 0.2, "{}", run.breakdown);
        assert!(run.breakdown.fraction("issue") > 0.6);
    }

    #[test]
    fn oversized_working_set_is_capacity_error() {
        let mut cfg = RawConfig::paper();
        cfg.local_words = 64;
        let w = CslcWorkload::new(CslcConfig::small(), 7).unwrap();
        assert!(matches!(run(&cfg, &w), Err(SimError::Capacity { .. })));
    }
}
