//! Kernel programs for Raw (paper Section 3): MIMD (CSLC), stream-mode
//! (beam steering), and the choreographed blocked corner turn.

pub mod beam_steering;
pub mod corner_turn;
pub mod cslc;
pub mod matmul;
