//! Matrix multiplication on Raw — the Section 2.3 scaling claim.
//!
//! "Several kernels including matrix multiplication are implemented on
//! Raw … Raw obtains speedup of up to 12 relative to single-tile
//! performance on ILP benchmarks." Each tile owns a block of `C`; its
//! strip of `A` lives in the local store, while the matching strip of
//! `B` streams past on the static network (each `B` word is fetched from
//! a DRAM port once and forwarded down a tile column). Speedup over one
//! tile is sub-linear because of the network fill, the per-round
//! startup, and edge-block imbalance — landing near the paper's 12×.

use triarch_kernels::matmul::{max_error, MatmulWorkload};
use triarch_simcore::{AccessPattern, KernelRun, SimError, Verification};

use crate::config::RawConfig;
use crate::machine::RawMachine;
use crate::network::TileId;

/// Runs the blocked parallel matmul.
///
/// # Errors
///
/// Returns [`SimError`] if the matrices exceed off-chip memory or a
/// tile's strip of `A` cannot fit its local store.
pub fn run(cfg: &RawConfig, workload: &MatmulWorkload) -> Result<KernelRun, SimError> {
    let n = workload.n();
    let words = n * n;
    if 3 * words > cfg.mem_words {
        return Err(SimError::capacity("raw off-chip memory", 3 * words, cfg.mem_words));
    }
    let grid = cfg.mesh_width;
    let block = n.div_ceil(grid);
    // Each tile holds its strip of A (block rows) plus one streamed
    // column block of B at a time.
    let local_needed = block * n + block * block;
    if local_needed > cfg.local_words {
        return Err(SimError::capacity("raw tile local memory", local_needed, cfg.local_words));
    }

    let mut m = RawMachine::new(cfg)?;
    let a = workload.a();
    let b = workload.b();
    let reference = workload.reference_product();
    let mut c = vec![0.0f32; words];

    m.begin_phase()?;
    // A strips load once, sequentially, through the DRAM ports.
    m.dram_traffic(0, words, AccessPattern::Sequential)?;
    // B is read once from the ports and forwarded down each tile column:
    // each tile receives its n x block strip over the network.
    m.dram_traffic(words, words, AccessPattern::Sequential)?;

    for ti in 0..grid {
        for tj in 0..grid {
            let tile = TileId { x: tj, y: ti }.index(grid);
            let i0 = ti * block;
            let j0 = tj * block;
            let i1 = (i0 + block).min(n);
            let j1 = (j0 + block).min(n);
            if i0 >= n || j0 >= n {
                continue;
            }
            let rows = i1 - i0;
            let cols = j1 - j0;

            // Functional block computation.
            for i in i0..i1 {
                for j in j0..j1 {
                    let mut acc = 0.0f64;
                    for k in 0..n {
                        acc += f64::from(a[i * n + k]) * f64::from(b[k * n + j]);
                    }
                    c[i * n + j] = acc as f32;
                }
            }

            // Timing: per C element, n multiply-adds (2 instrs as mul +
            // add on the single-issue core) plus per-k loop overhead of 1;
            // A operands come from the local store as part of the madd,
            // B operands arrive on the network.
            let macs = (rows * cols * n) as u64;
            m.tile_issue(tile, macs * 3)?;
            m.count_ops(macs * 2);
            // Network occupancy: the B strip (n x cols words) transits
            // this tile, plus forwarding traffic for tiles below it in
            // the column.
            let forwarded = (grid - 1 - ti) as u64;
            m.tile_net_words(tile, (n * cols) as u64 * (1 + forwarded), 1 + ti as u64)?;
            // C block writes back through the ports (issue slots).
            m.tile_issue(tile, (rows * cols) as u64)?;
        }
    }
    m.dram_traffic(2 * words, words, AccessPattern::Sequential)?;
    m.end_phase(false)?;

    let err = max_error(&c, &reference);
    let verification =
        if err == 0.0 { Verification::BitExact } else { Verification::MaxError(err) };
    m.finish(verification)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn product_is_correct() {
        let w = MatmulWorkload::new(48, 3).unwrap();
        let run = run(&RawConfig::paper(), &w).unwrap();
        assert!(run.verification.is_ok(1e-4), "{:?}", run.verification);
        assert_eq!(run.ops_executed, w.flops());
    }

    #[test]
    fn non_multiple_dimensions() {
        let w = MatmulWorkload::new(37, 5).unwrap();
        let run = run(&RawConfig::paper(), &w).unwrap();
        assert!(run.verification.is_ok(1e-4));
    }

    #[test]
    fn sixteen_tiles_speed_up_roughly_twelve_fold() {
        // The paper's Section 2.3 claim: "speedup of up to 12 relative to
        // single-tile performance".
        let w = MatmulWorkload::new(96, 7).unwrap();
        let sixteen = run(&RawConfig::paper(), &w).unwrap().cycles;
        let mut single = RawConfig::paper();
        single.mesh_width = 1;
        single.local_words = 64 * 1024; // one tile must hold all of A
        let one = run(&single, &w).unwrap().cycles;
        let speedup = one.ratio(sixteen);
        assert!(speedup > 8.0 && speedup < 16.0, "speedup {speedup:.1}");
    }

    #[test]
    fn oversized_strip_is_capacity_error() {
        let w = MatmulWorkload::new(512, 0).unwrap();
        // 512/4 * 512 = 64k words per strip > the 8k-word local store.
        assert!(matches!(run(&RawConfig::paper(), &w), Err(SimError::Capacity { .. })));
    }
}
