//! Paper-size calibration: Raw's Table 3 column must land within the
//! reproduction band of the published numbers (see DESIGN.md §5).

use triarch_kernels::{BeamSteeringWorkload, CornerTurnWorkload, CslcWorkload};
use triarch_raw::{programs, RawConfig};

fn assert_band(label: &str, ours_kc: f64, paper_kc: f64) {
    let ratio = ours_kc / paper_kc;
    println!("{label}: {ours_kc:.1} kc (paper {paper_kc}) ratio {ratio:.2}");
    assert!((0.5..=2.0).contains(&ratio), "{label}: ratio {ratio:.2} outside band");
}

#[test]
fn paper_size_calibration() {
    let cfg = RawConfig::paper();

    let w = CornerTurnWorkload::paper(2).unwrap();
    let run = programs::corner_turn::run(&cfg, &w).unwrap();
    assert!(run.verification.is_ok(0.0));
    assert_band("Raw corner turn", run.cycles.to_kilocycles(), 146.0);
    // Paper §4.2: issue-rate-bound; DRAM ports are not a bottleneck, and
    // performance is "nearly identical to the maximum predicted by the
    // instruction issue rate" (2 instructions per word over 16 tiles).
    assert!(run.breakdown.fraction("issue") > 0.9, "{}", run.breakdown);
    let ideal = 2.0 * 1024.0 * 1024.0 / 16.0;
    assert!((run.cycles.get() as f64) < ideal * 1.2);

    let w = BeamSteeringWorkload::paper(3).unwrap();
    let run = programs::beam_steering::run(&cfg, &w).unwrap();
    assert!(run.verification.is_ok(0.0));
    assert_band("Raw beam steering", run.cycles.to_kilocycles(), 19.0);

    let w = CslcWorkload::paper(4).unwrap();
    let run = programs::cslc::run(&cfg, &w).unwrap();
    assert!(run.verification.is_ok(triarch_kernels::verify::CSLC_TOLERANCE));
    assert_band("Raw CSLC", run.cycles.to_kilocycles(), 357.0);
    // Paper §4.3: ~31.4% of peak; memory stalls below 10%.
    let util = run.utilization(16.0);
    assert!(util > 0.2 && util < 0.45, "utilization {util:.3}");
    assert!(run.breakdown.fraction("stall") < 0.1);
}
