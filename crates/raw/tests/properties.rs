//! Property-based tests for the Raw simulator.

use proptest::prelude::*;
use triarch_kernels::beam_steering::BeamSteeringWorkload;
use triarch_kernels::corner_turn::CornerTurnWorkload;
use triarch_kernels::matmul::MatmulWorkload;
use triarch_raw::{programs, RawConfig, TileId};
use triarch_simcore::Verification;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The blocked corner turn is bit-exact for arbitrary shapes,
    /// including partial edge blocks.
    #[test]
    fn corner_turn_bit_exact(rows in 1usize..130, cols in 1usize..130, seed in any::<u64>()) {
        let w = CornerTurnWorkload::with_dims(rows, cols, seed).unwrap();
        let run = programs::corner_turn::run(&RawConfig::paper(), &w).unwrap();
        prop_assert_eq!(run.verification, Verification::BitExact);
    }

    /// Stream-mode beam steering is bit-exact for arbitrary shapes and
    /// mesh sizes.
    #[test]
    fn beam_steering_bit_exact(
        elements in 1usize..200,
        width in 1usize..5,
        seed in any::<u64>(),
    ) {
        let w = BeamSteeringWorkload::new(elements, 2, 2, seed).unwrap();
        let mut cfg = RawConfig::paper();
        cfg.mesh_width = width;
        let run = programs::beam_steering::run(&cfg, &w).unwrap();
        prop_assert_eq!(run.verification, Verification::BitExact);
    }

    /// Matmul is numerically correct for arbitrary sizes that fit.
    #[test]
    fn matmul_correct(n in 1usize..64, seed in any::<u64>()) {
        let w = MatmulWorkload::new(n, seed).unwrap();
        let run = programs::matmul::run(&RawConfig::paper(), &w).unwrap();
        prop_assert!(run.verification.is_ok(1e-3), "{:?}", run.verification);
    }

    /// More tiles never slow the data-parallel kernels down.
    #[test]
    fn more_tiles_never_hurt(seed in any::<u64>()) {
        let w = BeamSteeringWorkload::new(512, 4, 2, seed).unwrap();
        let mut small = RawConfig::paper();
        small.mesh_width = 2;
        let mut large = RawConfig::paper();
        large.mesh_width = 4;
        let few = programs::beam_steering::run(&small, &w).unwrap().cycles;
        let many = programs::beam_steering::run(&large, &w).unwrap().cycles;
        prop_assert!(many <= few, "16 tiles ({many}) slower than 4 ({few})");
    }

    /// Mesh routing invariants: hop counts are symmetric and match the
    /// Manhattan distance.
    #[test]
    fn routing_hops_match_manhattan(
        a in 0usize..16,
        b in 0usize..16,
        words in 1u64..100,
    ) {
        let src = TileId::from_index(a, 4).unwrap();
        let dst = TileId::from_index(b, 4).unwrap();
        prop_assert_eq!(src.hops_to(dst), dst.hops_to(src));
        let mut net = triarch_raw::StaticNetwork::new(4, 3, 1).unwrap();
        let hops = net.send(src, dst, words).unwrap();
        prop_assert_eq!(hops, src.hops_to(dst));
        if hops > 0 {
            prop_assert_eq!(net.max_link_words(), words);
        }
    }
}
