//! The interface every simulated architecture implements.

use std::fmt;

use triarch_simcore::faults::FaultHook;
use triarch_simcore::trace::TraceSink;
use triarch_simcore::{CycleBudget, KernelRun, MachineInfo, SimError};

use crate::beam_steering::BeamSteeringWorkload;
use crate::corner_turn::CornerTurnWorkload;
use crate::cslc::CslcWorkload;

/// The three kernels of the study.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Kernel {
    /// 1024×1024 matrix transpose (Section 3.1).
    CornerTurn,
    /// Coherent side-lobe canceller (Section 3.2).
    Cslc,
    /// Beam steering (Section 3.3).
    BeamSteering,
}

impl Kernel {
    /// All kernels in the paper's presentation order.
    pub const ALL: [Kernel; 3] = [Kernel::CornerTurn, Kernel::Cslc, Kernel::BeamSteering];

    /// Display name matching the paper's tables.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Kernel::CornerTurn => "Corner Turn",
            Kernel::Cslc => "CSLC",
            Kernel::BeamSteering => "Beam Steering",
        }
    }

    /// Parses a display name back into the kernel (the inverse of
    /// [`Kernel::name`], matched case-insensitively). `None` for
    /// anything that is not one of the study's three kernels.
    #[must_use]
    pub fn from_name(name: &str) -> Option<Kernel> {
        Kernel::ALL.into_iter().find(|k| k.name().eq_ignore_ascii_case(name))
    }
}

impl fmt::Display for Kernel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A simulated machine that can run the study's three kernels.
///
/// Implementations must be *data-accurate*: each run computes the actual
/// kernel output on simulated hardware and reports how it compared with
/// the workload's reference output in [`KernelRun::verification`].
pub trait SignalMachine {
    /// Static machine description (paper Table 2 row).
    fn info(&self) -> &MachineInfo;

    /// Installs a watchdog cycle budget for subsequent runs: once a run's
    /// simulated activity passes the budget, the engine aborts with
    /// [`SimError::BudgetExceeded`] instead of running unboundedly. The
    /// default budget is [`CycleBudget::UNLIMITED`].
    fn set_cycle_budget(&mut self, budget: CycleBudget);

    /// Runs the corner-turn kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the workload shape is unsupported by this
    /// machine's mapping or exceeds a hardware resource.
    fn corner_turn(&mut self, workload: &CornerTurnWorkload) -> Result<KernelRun, SimError>;

    /// Runs the CSLC kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the workload shape is unsupported by this
    /// machine's mapping or exceeds a hardware resource.
    fn cslc(&mut self, workload: &CslcWorkload) -> Result<KernelRun, SimError>;

    /// Runs the beam-steering kernel.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] when the workload shape is unsupported by this
    /// machine's mapping or exceeds a hardware resource.
    fn beam_steering(&mut self, workload: &BeamSteeringWorkload) -> Result<KernelRun, SimError>;

    /// Runs the corner-turn kernel while emitting cycle-attribution trace
    /// events into `sink`.
    ///
    /// The default implementation falls back to the untraced
    /// [`corner_turn`](Self::corner_turn) and emits nothing; machines that
    /// support tracing override this so the event stream tiles the reported
    /// [`KernelRun::breakdown`].
    ///
    /// # Errors
    ///
    /// Same as [`corner_turn`](Self::corner_turn).
    fn corner_turn_traced(
        &mut self,
        workload: &CornerTurnWorkload,
        _sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        self.corner_turn(workload)
    }

    /// Runs the CSLC kernel while emitting cycle-attribution trace events
    /// into `sink` (see [`corner_turn_traced`](Self::corner_turn_traced)).
    ///
    /// # Errors
    ///
    /// Same as [`cslc`](Self::cslc).
    fn cslc_traced(
        &mut self,
        workload: &CslcWorkload,
        _sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        self.cslc(workload)
    }

    /// Runs the beam-steering kernel while emitting cycle-attribution trace
    /// events into `sink` (see [`corner_turn_traced`](Self::corner_turn_traced)).
    ///
    /// # Errors
    ///
    /// Same as [`beam_steering`](Self::beam_steering).
    fn beam_steering_traced(
        &mut self,
        workload: &BeamSteeringWorkload,
        _sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        self.beam_steering(workload)
    }

    /// Runs the corner-turn kernel with a fault hook consulted wherever
    /// simulated state crosses a fault surface (DRAM transfers, compute
    /// results). Implementations apply the hook's effects to real
    /// simulated data, charge its ECC/retry cycle costs into the
    /// breakdown, and convert a transfer failure into
    /// [`SimError::DetectedFault`].
    ///
    /// # Errors
    ///
    /// Same as [`corner_turn`](Self::corner_turn), plus
    /// [`SimError::DetectedFault`] and [`SimError::BudgetExceeded`].
    fn corner_turn_faulted(
        &mut self,
        workload: &CornerTurnWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError>;

    /// Runs the CSLC kernel with a fault hook (see
    /// [`corner_turn_faulted`](Self::corner_turn_faulted)).
    ///
    /// # Errors
    ///
    /// Same as [`cslc`](Self::cslc), plus [`SimError::DetectedFault`] and
    /// [`SimError::BudgetExceeded`].
    fn cslc_faulted(
        &mut self,
        workload: &CslcWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError>;

    /// Runs the beam-steering kernel with a fault hook (see
    /// [`corner_turn_faulted`](Self::corner_turn_faulted)).
    ///
    /// # Errors
    ///
    /// Same as [`beam_steering`](Self::beam_steering), plus
    /// [`SimError::DetectedFault`] and [`SimError::BudgetExceeded`].
    fn beam_steering_faulted(
        &mut self,
        workload: &BeamSteeringWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError>;

    /// Dispatches a kernel by enum value.
    ///
    /// # Errors
    ///
    /// Propagates the corresponding kernel method's error.
    fn run(&mut self, kernel: Kernel, workloads: &WorkloadSet) -> Result<KernelRun, SimError> {
        match kernel {
            Kernel::CornerTurn => self.corner_turn(&workloads.corner_turn),
            Kernel::Cslc => self.cslc(&workloads.cslc),
            Kernel::BeamSteering => self.beam_steering(&workloads.beam_steering),
        }
    }

    /// Dispatches a kernel by enum value with tracing.
    ///
    /// # Errors
    ///
    /// Propagates the corresponding kernel method's error.
    fn run_traced(
        &mut self,
        kernel: Kernel,
        workloads: &WorkloadSet,
        sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        match kernel {
            Kernel::CornerTurn => self.corner_turn_traced(&workloads.corner_turn, sink),
            Kernel::Cslc => self.cslc_traced(&workloads.cslc, sink),
            Kernel::BeamSteering => self.beam_steering_traced(&workloads.beam_steering, sink),
        }
    }

    /// Dispatches a kernel by enum value with a fault hook.
    ///
    /// # Errors
    ///
    /// Propagates the corresponding kernel method's error.
    fn run_faulted(
        &mut self,
        kernel: Kernel,
        workloads: &WorkloadSet,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError> {
        match kernel {
            Kernel::CornerTurn => self.corner_turn_faulted(&workloads.corner_turn, faults),
            Kernel::Cslc => self.cslc_faulted(&workloads.cslc, faults),
            Kernel::BeamSteering => self.beam_steering_faulted(&workloads.beam_steering, faults),
        }
    }
}

/// One instance of every kernel workload, shared across machines so all
/// architectures process identical data.
#[derive(Debug, Clone)]
pub struct WorkloadSet {
    /// The corner-turn matrix.
    pub corner_turn: CornerTurnWorkload,
    /// The CSLC channels and weights.
    pub cslc: CslcWorkload,
    /// The beam-steering tables.
    pub beam_steering: BeamSteeringWorkload,
}

impl WorkloadSet {
    /// Builds the paper-sized workload set from a seed.
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn paper(seed: u64) -> Result<Self, SimError> {
        Ok(WorkloadSet {
            corner_turn: CornerTurnWorkload::paper(seed)?,
            cslc: CslcWorkload::paper(seed.wrapping_add(1))?,
            beam_steering: BeamSteeringWorkload::paper(seed.wrapping_add(2))?,
        })
    }

    /// Builds a reduced workload set for fast tests: a 64×64 corner turn,
    /// the small CSLC configuration, and a 128-element beam steer.
    ///
    /// # Errors
    ///
    /// Never fails for the built-in small parameters.
    pub fn small(seed: u64) -> Result<Self, SimError> {
        Ok(WorkloadSet {
            corner_turn: CornerTurnWorkload::with_dims(64, 64, seed)?,
            cslc: CslcWorkload::new(crate::cslc::CslcConfig::small(), seed.wrapping_add(1))?,
            beam_steering: BeamSteeringWorkload::new(128, 4, 2, seed.wrapping_add(2))?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_names_match_paper_tables() {
        assert_eq!(Kernel::CornerTurn.name(), "Corner Turn");
        assert_eq!(Kernel::Cslc.name(), "CSLC");
        assert_eq!(Kernel::BeamSteering.name(), "Beam Steering");
        assert_eq!(Kernel::ALL.len(), 3);
        assert_eq!(Kernel::CornerTurn.to_string(), "Corner Turn");
    }

    #[test]
    fn workload_sets_build() {
        let small = WorkloadSet::small(3).unwrap();
        assert_eq!(small.corner_turn.rows(), 64);
        assert_eq!(small.beam_steering.directions(), 4);
        // The paper set is large; just verify its shape without running it.
        let paper = WorkloadSet::paper(3).unwrap();
        assert_eq!(paper.corner_turn.rows(), 1024);
        assert_eq!(paper.cslc.config().subbands, 73);
        assert_eq!(paper.beam_steering.outputs(), 51_456);
    }
}
