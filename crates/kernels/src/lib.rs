//! Architecture-neutral kernel definitions for the `triarch` study.
//!
//! The paper evaluates three memory-intensive radar signal-processing
//! kernels (Section 3):
//!
//! - **Corner turn** ([`corner_turn`]): a 1024×1024 single-precision
//!   matrix transpose — a pure memory-bandwidth test.
//! - **Coherent side-lobe canceller** ([`cslc`]): FFT → adaptive weight
//!   application → IFFT over 73 overlapping 128-sample sub-bands of four
//!   8 K-sample channels — a compute-intensive kernel.
//! - **Beam steering** ([`beam_steering`]): phased-array phase computation
//!   from calibration tables — 2 reads, 1 write, 5 adds and 1 shift per
//!   output; stresses memory latency/bandwidth.
//!
//! Each module provides the workload type (sized per the paper), a golden
//! reference implementation, and verification helpers. The
//! [`machine::SignalMachine`] trait is the interface every simulated
//! architecture implements.
//!
//! # Example
//!
//! ```
//! use triarch_kernels::corner_turn::CornerTurnWorkload;
//!
//! # fn main() -> Result<(), triarch_simcore::SimError> {
//! let w = CornerTurnWorkload::with_dims(8, 8, 42)?;
//! let t = w.reference_transpose();
//! // Transposing twice recovers the source.
//! let w2 = CornerTurnWorkload::from_data(8, 8, t)?;
//! assert_eq!(w2.reference_transpose(), w.source());
//! # Ok(())
//! # }
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod beam_steering;
pub mod corner_turn;
pub mod cslc;
pub mod machine;
pub mod matmul;
pub mod verify;

pub use beam_steering::BeamSteeringWorkload;
pub use corner_turn::CornerTurnWorkload;
pub use cslc::CslcWorkload;
pub use machine::{Kernel, SignalMachine, WorkloadSet};
