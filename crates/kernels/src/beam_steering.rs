//! The beam-steering kernel.
//!
//! Paper Section 3.3: "Beam steering is a radar-processing kernel that
//! directs a phased-array radar without physically rotating the antenna.
//! The computation of the phase for each antenna element stresses memory
//! bandwidth and latency because large tables are used for calibration …
//! Arithmetic operations are additions and shift operations. … The number
//! of antenna elements is 1608. Each element can direct the signal up to 4
//! directions per dwell."
//!
//! Per output the kernel performs **2 reads, 1 write, 5 additions and
//! 1 shift** (Section 4.4). The paper does not state the number of dwells
//! simulated; back-calculating from its own Section 4.4 consistency checks
//! (see DESIGN.md) yields 8 dwells, which [`BeamSteeringWorkload::paper`]
//! uses.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triarch_simcore::{KernelDemands, SimError};

/// Paper parameter: antenna elements.
pub const PAPER_ELEMENTS: usize = 1608;
/// Paper parameter: directions per dwell.
pub const PAPER_DIRECTIONS: usize = 4;
/// Dwell count back-calculated from the paper's Section 4.4 numbers.
pub const PAPER_DWELLS: usize = 8;

/// A beam-steering workload: calibration tables plus steering parameters.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BeamSteeringWorkload {
    elements: usize,
    directions: usize,
    dwells: usize,
    cal_coarse: Vec<i32>,
    cal_fine: Vec<i32>,
    dir_offset: Vec<i32>,
    phase_inc: Vec<i32>,
    dwell_stride: i32,
    steer_bias: i32,
    shift: u32,
}

impl BeamSteeringWorkload {
    /// Creates the paper-sized workload (1608 elements × 4 directions ×
    /// 8 dwells) from a seed.
    ///
    /// # Errors
    ///
    /// Never fails for the paper parameters.
    pub fn paper(seed: u64) -> Result<Self, SimError> {
        Self::new(PAPER_ELEMENTS, PAPER_DIRECTIONS, PAPER_DWELLS, seed)
    }

    /// Creates a workload of arbitrary shape.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if any dimension is zero.
    pub fn new(
        elements: usize,
        directions: usize,
        dwells: usize,
        seed: u64,
    ) -> Result<Self, SimError> {
        if elements == 0 || directions == 0 || dwells == 0 {
            return Err(SimError::invalid_config("beam steering dimensions must be non-zero"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        Ok(BeamSteeringWorkload {
            elements,
            directions,
            dwells,
            cal_coarse: (0..elements).map(|_| rng.gen_range(-1 << 20..1 << 20)).collect(),
            cal_fine: (0..elements).map(|_| rng.gen_range(-1 << 12..1 << 12)).collect(),
            dir_offset: (0..directions).map(|_| rng.gen_range(-1 << 16..1 << 16)).collect(),
            phase_inc: (0..directions).map(|_| rng.gen_range(1..1 << 8)).collect(),
            dwell_stride: rng.gen_range(1 << 8..1 << 12),
            steer_bias: rng.gen_range(-1 << 10..1 << 10),
            shift: 4,
        })
    }

    /// Antenna elements.
    #[must_use]
    pub fn elements(&self) -> usize {
        self.elements
    }

    /// Directions per dwell.
    #[must_use]
    pub fn directions(&self) -> usize {
        self.directions
    }

    /// Dwells simulated.
    #[must_use]
    pub fn dwells(&self) -> usize {
        self.dwells
    }

    /// Total phase outputs: `elements × directions × dwells`.
    #[must_use]
    pub fn outputs(&self) -> usize {
        self.elements * self.directions * self.dwells
    }

    /// Coarse calibration table (one read per output).
    #[must_use]
    pub fn cal_coarse(&self) -> &[i32] {
        &self.cal_coarse
    }

    /// Fine calibration table (the second read per output).
    #[must_use]
    pub fn cal_fine(&self) -> &[i32] {
        &self.cal_fine
    }

    /// Per-direction base offsets (register resident).
    #[must_use]
    pub fn dir_offset(&self) -> &[i32] {
        &self.dir_offset
    }

    /// Per-direction phase-accumulator increments (register resident).
    #[must_use]
    pub fn phase_inc(&self) -> &[i32] {
        &self.phase_inc
    }

    /// Per-dwell stride (register resident).
    #[must_use]
    pub fn dwell_stride(&self) -> i32 {
        self.dwell_stride
    }

    /// Steering bias (register resident).
    #[must_use]
    pub fn steer_bias(&self) -> i32 {
        self.steer_bias
    }

    /// Final quantization shift.
    #[must_use]
    pub fn shift(&self) -> u32 {
        self.shift
    }

    /// Computes one output phase. Exactly 5 additions and 1 arithmetic
    /// shift; `acc` is the per-direction running phase accumulator,
    /// updated in place (the first of the 5 additions).
    #[inline]
    #[must_use]
    pub fn phase(&self, e: usize, d: usize, dwell_base: i32, acc: &mut i32) -> i32 {
        *acc = acc.wrapping_add(self.phase_inc[d]); // add 1
        let s = self.cal_coarse[e]
            .wrapping_add(self.cal_fine[e]) // add 2
            .wrapping_add(self.dir_offset[d]) // add 3
            .wrapping_add(dwell_base) // add 4
            .wrapping_add(*acc); // add 5
        s >> self.shift // shift 1
    }

    /// Runs the reference kernel.
    ///
    /// Output layout: `[dwell][direction][element]` flattened.
    #[must_use]
    pub fn reference_output(&self) -> Vec<i32> {
        let mut out = Vec::with_capacity(self.outputs());
        for dwell in 0..self.dwells {
            let dwell_base = (dwell as i32).wrapping_mul(self.dwell_stride);
            for d in 0..self.directions {
                let mut acc = self.steer_bias;
                for e in 0..self.elements {
                    out.push(self.phase(e, d, dwell_base, &mut acc));
                }
            }
        }
        out
    }

    /// Integer operations per output: 5 adds + 1 shift.
    #[must_use]
    pub fn ops_per_output(&self) -> u64 {
        6
    }

    /// Memory words per output: 2 table reads + 1 result write.
    #[must_use]
    pub fn words_per_output(&self) -> u64 {
        3
    }

    /// Demands for the Section 2.5 performance model.
    #[must_use]
    pub fn demands(&self) -> KernelDemands {
        let outputs = self.outputs() as u64;
        KernelDemands {
            onchip_words: outputs * self.words_per_output(),
            offchip_words: outputs * self.words_per_output(),
            ops: outputs * self.ops_per_output(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_shape() {
        let w = BeamSteeringWorkload::paper(1).unwrap();
        assert_eq!(w.elements(), 1608);
        assert_eq!(w.directions(), 4);
        assert_eq!(w.dwells(), 8);
        assert_eq!(w.outputs(), 51_456);
        assert_eq!(w.reference_output().len(), 51_456);
    }

    #[test]
    fn rejects_zero_dimensions() {
        assert!(BeamSteeringWorkload::new(0, 4, 1, 0).is_err());
        assert!(BeamSteeringWorkload::new(4, 0, 1, 0).is_err());
        assert!(BeamSteeringWorkload::new(4, 4, 0, 0).is_err());
    }

    #[test]
    fn deterministic_generation_and_output() {
        let a = BeamSteeringWorkload::new(64, 2, 3, 9).unwrap();
        let b = BeamSteeringWorkload::new(64, 2, 3, 9).unwrap();
        assert_eq!(a, b);
        assert_eq!(a.reference_output(), b.reference_output());
    }

    #[test]
    fn accumulator_makes_outputs_element_dependent() {
        let w = BeamSteeringWorkload::new(16, 1, 1, 2).unwrap();
        let out = w.reference_output();
        // With a strictly positive phase increment, consecutive outputs
        // for the same tables differ even when calibration entries repeat.
        let mut acc = w.steer_bias();
        let mut acc2 = w.steer_bias();
        let first = w.phase(0, 0, 0, &mut acc);
        assert_eq!(out[0], first);
        let _ = w.phase(0, 0, 0, &mut acc2);
        let again = w.phase(0, 0, 0, &mut acc2);
        assert_ne!(first, again, "running accumulator must advance");
    }

    #[test]
    fn phase_performs_expected_arithmetic() {
        let mut w = BeamSteeringWorkload::new(2, 1, 1, 0).unwrap();
        w.cal_coarse = vec![100, 200];
        w.cal_fine = vec![10, 20];
        w.dir_offset = vec![1000];
        w.phase_inc = vec![16];
        w.steer_bias = 0;
        w.shift = 4;
        let mut acc = 0;
        // (100 + 10 + 1000 + 0 + 16) >> 4 = 1126 >> 4 = 70
        assert_eq!(w.phase(0, 0, 0, &mut acc), 70);
        assert_eq!(acc, 16);
        // (200 + 20 + 1000 + 0 + 32) >> 4 = 1252 >> 4 = 78
        assert_eq!(w.phase(1, 0, 0, &mut acc), 78);
    }

    #[test]
    fn wrapping_arithmetic_never_panics() {
        let mut w = BeamSteeringWorkload::new(2, 1, 1, 0).unwrap();
        w.cal_coarse = vec![i32::MAX, i32::MIN];
        w.cal_fine = vec![i32::MAX, i32::MIN];
        let out = w.reference_output();
        assert_eq!(out.len(), 2);
    }

    #[test]
    fn demands_match_paper_per_output_costs() {
        let w = BeamSteeringWorkload::paper(0).unwrap();
        let d = w.demands();
        assert_eq!(d.ops, 51_456 * 6);
        assert_eq!(d.onchip_words, 51_456 * 3);
    }
}
