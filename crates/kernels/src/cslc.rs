//! The coherent side-lobe canceller (CSLC) kernel.
//!
//! Paper Section 3.2: "CSLC is a radar signal processing kernel used to
//! cancel jammer signals … Our CSLC implementation consists of FFTs, a
//! weight application (multiplication) stage, and IFFTs. … There are four
//! input channels: two main channels and two auxiliary channels. Each
//! channel has 8K samples per processing interval. … The data is
//! partitioned into 73 overlapping sub-bands, each of which contains 128
//! samples, so 128-sample FFTs are used."

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triarch_fft::ops::{mixed_128_ops, radix2_ops, radix4_ops, OpCount};
use triarch_fft::{Cf32, Fft};
use triarch_simcore::{KernelDemands, SimError};

/// Paper parameter: number of main (to-be-cleaned) channels.
pub const PAPER_MAIN_CHANNELS: usize = 2;
/// Paper parameter: number of auxiliary (jammer reference) channels.
pub const PAPER_AUX_CHANNELS: usize = 2;
/// Paper parameter: samples per channel per processing interval.
pub const PAPER_SAMPLES: usize = 8192;
/// Paper parameter: number of overlapping sub-bands.
pub const PAPER_SUBBANDS: usize = 73;
/// Paper parameter: FFT length per sub-band.
pub const PAPER_FFT_LEN: usize = 128;

/// Shape of a CSLC problem.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CslcConfig {
    /// Main channels (each produces one cancelled output stream).
    pub main_channels: usize,
    /// Auxiliary channels (jammer references).
    pub aux_channels: usize,
    /// Samples per channel.
    pub samples: usize,
    /// Number of overlapping sub-bands.
    pub subbands: usize,
    /// Sub-band FFT length (must be a power of two).
    pub fft_len: usize,
}

impl CslcConfig {
    /// The paper's configuration: 2 main + 2 aux channels, 8 K samples,
    /// 73 sub-bands of 128 samples.
    #[must_use]
    pub fn paper() -> Self {
        CslcConfig {
            main_channels: PAPER_MAIN_CHANNELS,
            aux_channels: PAPER_AUX_CHANNELS,
            samples: PAPER_SAMPLES,
            subbands: PAPER_SUBBANDS,
            fft_len: PAPER_FFT_LEN,
        }
    }

    /// A reduced configuration for fast tests (same structure, fewer
    /// sub-bands and samples).
    #[must_use]
    pub fn small() -> Self {
        CslcConfig { main_channels: 2, aux_channels: 2, samples: 512, subbands: 7, fft_len: 64 }
    }

    /// Hop between consecutive sub-band windows; windows overlap whenever
    /// the hop is smaller than the FFT length. For the paper config the
    /// hop is 112 samples (16-sample overlap): 72·112 + 128 = 8192.
    #[must_use]
    pub fn hop(&self) -> usize {
        if self.subbands <= 1 {
            return 0;
        }
        (self.samples - self.fft_len) / (self.subbands - 1)
    }

    /// Forward FFTs per interval (every channel, every sub-band).
    #[must_use]
    pub fn forward_ffts(&self) -> u64 {
        ((self.main_channels + self.aux_channels) * self.subbands) as u64
    }

    /// Inverse FFTs per interval (every main channel, every sub-band).
    #[must_use]
    pub fn inverse_ffts(&self) -> u64 {
        (self.main_channels * self.subbands) as u64
    }

    /// Real flops in the weight-application stage: per (main, sub-band,
    /// bin), one complex multiply-subtract per aux channel (8 real ops).
    #[must_use]
    pub fn weight_ops(&self) -> u64 {
        (self.main_channels * self.subbands * self.fft_len) as u64 * self.aux_channels as u64 * 8
    }

    /// Total real flops using the mixed radix-4 FFT (VIRAM, Imagine).
    #[must_use]
    pub fn total_ops_radix4(&self) -> u64 {
        self.fft_opcount_radix4().total() * (self.forward_ffts() + self.inverse_ffts())
            + self.weight_ops()
    }

    /// Total real flops using the radix-2 FFT (Raw's mapping).
    #[must_use]
    pub fn total_ops_radix2(&self) -> u64 {
        radix2_ops(self.fft_len).total() * (self.forward_ffts() + self.inverse_ffts())
            + self.weight_ops()
    }

    /// Op count of one sub-band transform under the radix-4 mapping
    /// (for 128 points this is exactly the paper's 3 radix-4 stages plus
    /// 1 radix-2 stage).
    #[must_use]
    pub fn fft_opcount_radix4(&self) -> OpCount {
        debug_assert!(self.fft_len != 128 || radix4_ops(128) == mixed_128_ops());
        radix4_ops(self.fft_len)
    }

    fn validate(&self) -> Result<(), SimError> {
        if self.main_channels == 0 || self.aux_channels == 0 {
            return Err(SimError::invalid_config("cslc needs main and aux channels"));
        }
        if self.subbands == 0 {
            return Err(SimError::invalid_config("cslc needs at least one sub-band"));
        }
        if !self.fft_len.is_power_of_two() || self.fft_len < 2 {
            return Err(SimError::invalid_config("cslc fft length must be a power of two >= 2"));
        }
        if self.samples < self.fft_len {
            return Err(SimError::invalid_config("cslc needs at least fft_len samples"));
        }
        if self.subbands > 1 && self.hop() == 0 {
            return Err(SimError::invalid_config("cslc sub-bands overlap completely (hop = 0)"));
        }
        Ok(())
    }
}

/// A CSLC workload: channel data plus per-(main, aux, sub-band, bin)
/// cancellation weights.
#[derive(Debug, Clone)]
pub struct CslcWorkload {
    cfg: CslcConfig,
    /// `[main_channel][sample]`
    main: Vec<Vec<Cf32>>,
    /// `[aux_channel][sample]`
    aux: Vec<Vec<Cf32>>,
    /// `[main][aux][subband * fft_len + bin]`
    weights: Vec<Vec<Vec<Cf32>>>,
    /// Forward FFT plan for `cfg.fft_len` (built once at construction so
    /// the reference pipeline stays panic-free).
    forward: Fft,
    /// Inverse FFT plan for `cfg.fft_len`.
    inverse: Fft,
}

/// Executes a plan on a window whose length matches it by construction.
///
/// `CslcWorkload` builds its plans for `cfg.fft_len` and slices every
/// window to exactly that length, so the process call cannot fail; the
/// `debug_assert` pins that invariant in tests without a panic path in
/// release code.
fn run_plan(plan: &Fft, window: &mut [Cf32]) {
    debug_assert_eq!(plan.len(), window.len());
    let _ = plan.process(window);
}

impl CslcWorkload {
    /// Creates the paper-sized workload from a seed.
    ///
    /// # Errors
    ///
    /// Propagates configuration validation (never fails for the paper
    /// parameters).
    pub fn paper(seed: u64) -> Result<Self, SimError> {
        Self::new(CslcConfig::paper(), seed)
    }

    /// Creates a workload for an arbitrary configuration.
    ///
    /// The main channels carry a synthetic target plus jammer leakage; the
    /// aux channels carry the jammer reference; weights model the coupling
    /// between them.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate configurations.
    pub fn new(cfg: CslcConfig, seed: u64) -> Result<Self, SimError> {
        cfg.validate()?;
        let forward =
            Fft::forward(cfg.fft_len).map_err(|e| SimError::invalid_config(e.to_string()))?;
        let inverse =
            Fft::inverse(cfg.fft_len).map_err(|e| SimError::invalid_config(e.to_string()))?;
        let mut rng = StdRng::seed_from_u64(seed);
        let jammer_freq: f32 = rng.gen_range(0.05..0.45);
        let target_freq: f32 = rng.gen_range(0.05..0.45);

        let aux: Vec<Vec<Cf32>> = (0..cfg.aux_channels)
            .map(|a| {
                (0..cfg.samples)
                    .map(|t| {
                        let phase =
                            2.0 * std::f32::consts::PI * jammer_freq * t as f32 + a as f32 * 0.3;
                        Cf32::from_angle(phase) + noise(&mut rng, 0.01)
                    })
                    .collect()
            })
            .collect();

        let main: Vec<Vec<Cf32>> = (0..cfg.main_channels)
            .map(|m| {
                (0..cfg.samples)
                    .map(|t| {
                        let target =
                            Cf32::from_angle(2.0 * std::f32::consts::PI * target_freq * t as f32)
                                .scale(0.5);
                        let leak: Cf32 = aux
                            .iter()
                            .map(|ch| ch[t].scale(0.2 + 0.05 * m as f32))
                            .fold(Cf32::ZERO, |acc, v| acc + v);
                        target + leak + noise(&mut rng, 0.01)
                    })
                    .collect()
            })
            .collect();

        let weights: Vec<Vec<Vec<Cf32>>> = (0..cfg.main_channels)
            .map(|_| {
                (0..cfg.aux_channels)
                    .map(|_| {
                        (0..cfg.subbands * cfg.fft_len)
                            .map(|_| Cf32::new(rng.gen_range(-0.3..0.3), rng.gen_range(-0.3..0.3)))
                            .collect()
                    })
                    .collect()
            })
            .collect();

        Ok(CslcWorkload { cfg, main, aux, weights, forward, inverse })
    }

    /// The workload's configuration.
    #[must_use]
    pub fn config(&self) -> &CslcConfig {
        &self.cfg
    }

    /// Main-channel samples: `main(m)[t]`.
    #[must_use]
    pub fn main_channel(&self, m: usize) -> &[Cf32] {
        &self.main[m]
    }

    /// Aux-channel samples: `aux(a)[t]`.
    #[must_use]
    pub fn aux_channel(&self, a: usize) -> &[Cf32] {
        &self.aux[a]
    }

    /// Weight vector for `(main, aux)` over all sub-bands, indexed
    /// `subband * fft_len + bin`.
    #[must_use]
    pub fn weights(&self, m: usize, a: usize) -> &[Cf32] {
        &self.weights[m][a]
    }

    /// Runs the reference pipeline: FFT each channel's sub-bands, subtract
    /// weighted aux spectra from each main spectrum, IFFT.
    ///
    /// Output layout: `[main][subband][bin]` flattened, i.e.
    /// `out[(m * subbands + s) * fft_len + k]`.
    #[must_use]
    pub fn reference_output(&self) -> Vec<Cf32> {
        let cfg = &self.cfg;
        let hop = cfg.hop();

        // Aux spectra are shared by all main channels: [aux][subband][bin].
        let aux_spectra: Vec<Vec<Vec<Cf32>>> = (0..cfg.aux_channels)
            .map(|a| {
                (0..cfg.subbands)
                    .map(|s| {
                        let start = s * hop;
                        let mut window = self.aux[a][start..start + cfg.fft_len].to_vec();
                        run_plan(&self.forward, &mut window);
                        window
                    })
                    .collect()
            })
            .collect();

        let mut out = Vec::with_capacity(cfg.main_channels * cfg.subbands * cfg.fft_len);
        for m in 0..cfg.main_channels {
            for s in 0..cfg.subbands {
                let start = s * hop;
                let mut spectrum = self.main[m][start..start + cfg.fft_len].to_vec();
                run_plan(&self.forward, &mut spectrum);
                for (a, aux) in aux_spectra.iter().enumerate() {
                    let weights = &self.weights[m][a];
                    for (k, v) in spectrum.iter_mut().enumerate() {
                        *v -= weights[s * cfg.fft_len + k] * aux[s][k];
                    }
                }
                run_plan(&self.inverse, &mut spectrum);
                out.extend_from_slice(&spectrum);
            }
        }
        out
    }

    /// Number of complex samples in the output.
    #[must_use]
    pub fn output_len(&self) -> usize {
        self.cfg.main_channels * self.cfg.subbands * self.cfg.fft_len
    }

    /// Demands for a machine whose working set stays on chip: input and
    /// output cross the memory interface once (2 words per complex
    /// sample); all FFT traffic stays in registers/SRF/local store.
    #[must_use]
    pub fn demands(&self) -> KernelDemands {
        let cfg = &self.cfg;
        let input_words =
            ((cfg.main_channels + cfg.aux_channels) * cfg.subbands * cfg.fft_len * 2) as u64;
        let weight_words =
            (cfg.main_channels * cfg.aux_channels * cfg.subbands * cfg.fft_len * 2) as u64;
        let output_words = (self.output_len() * 2) as u64;
        KernelDemands {
            onchip_words: input_words + weight_words + output_words,
            offchip_words: input_words + weight_words + output_words,
            ops: cfg.total_ops_radix4(),
        }
    }
}

fn noise(rng: &mut StdRng, scale: f32) -> Cf32 {
    Cf32::new(rng.gen_range(-scale..scale), rng.gen_range(-scale..scale))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let cfg = CslcConfig::paper();
        assert_eq!(cfg.hop(), 112);
        assert_eq!(cfg.forward_ffts(), 292);
        assert_eq!(cfg.inverse_ffts(), 146);
        // 72 hops of 112 plus a final 128-sample window covers 8192 exactly.
        assert_eq!((cfg.subbands - 1) * cfg.hop() + cfg.fft_len, cfg.samples);
    }

    #[test]
    fn op_counts_are_consistent() {
        let cfg = CslcConfig::paper();
        assert_eq!(cfg.weight_ops(), 2 * 73 * 128 * 2 * 8);
        // Radix-2 executes more flops than radix-4 on the same kernel.
        assert!(cfg.total_ops_radix2() > cfg.total_ops_radix4());
        // Both are dominated by the 438 transforms.
        assert!(cfg.total_ops_radix4() > 438 * 3_000);
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut cfg = CslcConfig::paper();
        cfg.main_channels = 0;
        assert!(CslcWorkload::new(cfg, 0).is_err());
        let mut cfg = CslcConfig::paper();
        cfg.fft_len = 100;
        assert!(CslcWorkload::new(cfg, 0).is_err());
        let mut cfg = CslcConfig::paper();
        cfg.samples = 64;
        assert!(CslcWorkload::new(cfg, 0).is_err());
        let mut cfg = CslcConfig::paper();
        cfg.subbands = 0;
        assert!(CslcWorkload::new(cfg, 0).is_err());
    }

    #[test]
    fn reference_output_has_expected_length() {
        let w = CslcWorkload::new(CslcConfig::small(), 5).unwrap();
        let out = w.reference_output();
        assert_eq!(out.len(), w.output_len());
        assert_eq!(out.len(), 2 * 7 * 64);
        // Output must be finite everywhere.
        assert!(out.iter().all(|v| v.re.is_finite() && v.im.is_finite()));
    }

    #[test]
    fn generation_is_deterministic() {
        let a = CslcWorkload::new(CslcConfig::small(), 11).unwrap();
        let b = CslcWorkload::new(CslcConfig::small(), 11).unwrap();
        assert_eq!(a.reference_output(), b.reference_output());
    }

    #[test]
    fn cancellation_reduces_jammer_when_weights_match_coupling() {
        // Build a workload, then override weights with the true coupling
        // (0.2 for main 0) and verify the jammer tone is attenuated.
        let cfg = CslcConfig::small();
        let mut w = CslcWorkload::new(cfg, 3).unwrap();
        for a in 0..cfg.aux_channels {
            for v in w.weights[0][a].iter_mut() {
                *v = Cf32::new(0.2, 0.0);
            }
        }
        let out = w.reference_output();
        // Locate the jammer from the aux reference spectrum, then compare
        // main channel 0's first sub-band before/after at that bin.
        let forward = Fft::forward(cfg.fft_len).unwrap();
        let mut aux_spec = w.aux[0][..cfg.fft_len].to_vec();
        forward.process(&mut aux_spec).unwrap();
        let jammer_bin = aux_spec
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.norm_sqr().total_cmp(&b.1.norm_sqr()))
            .map(|(i, _)| i)
            .unwrap();
        let mut before = w.main[0][..cfg.fft_len].to_vec();
        forward.process(&mut before).unwrap();
        let mut after = out[..cfg.fft_len].to_vec();
        forward.process(&mut after).unwrap();
        assert!(
            after[jammer_bin].abs() < before[jammer_bin].abs(),
            "weighted subtraction should attenuate the dominant (jammer) bin"
        );
    }

    #[test]
    fn demands_count_all_streams() {
        let w = CslcWorkload::paper(0).unwrap();
        let d = w.demands();
        assert!(d.ops > 1_500_000, "CSLC is compute heavy: {}", d.ops);
        assert!(d.onchip_words > 100_000);
    }
}
