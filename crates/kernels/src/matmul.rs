//! Matrix multiplication — an extension kernel.
//!
//! Not one of the paper's three radar kernels, but the paper's Raw
//! description (Section 2.3) leans on it: "Several kernels including
//! matrix multiplication are implemented on Raw … The results show that
//! Raw obtains speedup of up to 12 relative to single-tile performance on
//! ILP benchmarks." This workload lets the Raw simulator reproduce that
//! scaling claim.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triarch_simcore::{KernelDemands, SimError};

/// A square single-precision matrix-multiply workload: `C = A × B`.
#[derive(Debug, Clone, PartialEq)]
pub struct MatmulWorkload {
    n: usize,
    a: Vec<f32>,
    b: Vec<f32>,
}

impl MatmulWorkload {
    /// Creates an `n × n` workload with seeded pseudo-random entries in
    /// `[-1, 1]`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for `n == 0`.
    pub fn new(n: usize, seed: u64) -> Result<Self, SimError> {
        if n == 0 {
            return Err(SimError::invalid_config("matmul dimension must be non-zero"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut gen = |_| rng.gen_range(-1.0f32..1.0);
        let a: Vec<f32> = (0..n * n).map(&mut gen).collect();
        let b: Vec<f32> = (0..n * n).map(&mut gen).collect();
        Ok(MatmulWorkload { n, a, b })
    }

    /// Matrix dimension.
    #[must_use]
    pub fn n(&self) -> usize {
        self.n
    }

    /// Row-major view of `A`.
    #[must_use]
    pub fn a(&self) -> &[f32] {
        &self.a
    }

    /// Row-major view of `B`.
    #[must_use]
    pub fn b(&self) -> &[f32] {
        &self.b
    }

    /// The golden product, computed in `f64` accumulation.
    #[must_use]
    pub fn reference_product(&self) -> Vec<f32> {
        let n = self.n;
        let mut c = vec![0.0f32; n * n];
        for i in 0..n {
            for j in 0..n {
                let mut acc = 0.0f64;
                for k in 0..n {
                    acc += f64::from(self.a[i * n + k]) * f64::from(self.b[k * n + j]);
                }
                c[i * n + j] = acc as f32;
            }
        }
        c
    }

    /// Flops executed: `2·n³` multiply-adds counted as two ops each.
    #[must_use]
    pub fn flops(&self) -> u64 {
        2 * (self.n as u64).pow(3)
    }

    /// Roofline demands: every matrix crosses memory once.
    #[must_use]
    pub fn demands(&self) -> KernelDemands {
        let words = 3 * (self.n * self.n) as u64;
        KernelDemands { onchip_words: words, offchip_words: words, ops: self.flops() }
    }
}

/// Maximum absolute elementwise error between two products.
#[must_use]
pub fn max_error(got: &[f32], expected: &[f32]) -> f32 {
    got.iter().zip(expected).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_times_anything() {
        let mut w = MatmulWorkload::new(3, 0).unwrap();
        w.a = vec![1.0, 0.0, 0.0, 0.0, 1.0, 0.0, 0.0, 0.0, 1.0];
        assert_eq!(w.reference_product(), w.b);
    }

    #[test]
    fn known_2x2_product() {
        let mut w = MatmulWorkload::new(2, 0).unwrap();
        w.a = vec![1.0, 2.0, 3.0, 4.0];
        w.b = vec![5.0, 6.0, 7.0, 8.0];
        assert_eq!(w.reference_product(), vec![19.0, 22.0, 43.0, 50.0]);
    }

    #[test]
    fn flops_and_demands() {
        let w = MatmulWorkload::new(8, 1).unwrap();
        assert_eq!(w.flops(), 2 * 512);
        assert_eq!(w.demands().onchip_words, 3 * 64);
        assert!(MatmulWorkload::new(0, 0).is_err());
    }

    #[test]
    fn deterministic_generation() {
        let a = MatmulWorkload::new(4, 9).unwrap();
        let b = MatmulWorkload::new(4, 9).unwrap();
        assert_eq!(a, b);
    }
}
