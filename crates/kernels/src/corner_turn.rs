//! The corner-turn kernel: a matrix transpose that tests memory bandwidth.
//!
//! Paper Section 3.1: "The data in the source matrix is transposed and
//! stored in the destination matrix. The matrix size … is 1024 × 1024 with
//! 4-byte elements" — chosen to be larger than Imagine's SRF (128 KB) and
//! Raw's internal memories (2 MB) but smaller than VIRAM's on-chip memory
//! (13 MB).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use triarch_simcore::{KernelDemands, SimError};

/// The paper's matrix dimension (1024 × 1024).
pub const PAPER_DIM: usize = 1024;

/// A corner-turn workload: a row-major source matrix of 32-bit words.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CornerTurnWorkload {
    rows: usize,
    cols: usize,
    src: Vec<u32>,
}

impl CornerTurnWorkload {
    /// Creates the paper-sized 1024×1024 workload from a seed.
    ///
    /// # Errors
    ///
    /// Never fails for the paper dimensions; returns [`SimError`] through
    /// the shared constructor for uniformity.
    pub fn paper(seed: u64) -> Result<Self, SimError> {
        Self::with_dims(PAPER_DIM, PAPER_DIM, seed)
    }

    /// Creates a workload of arbitrary dimensions filled with seeded
    /// pseudo-random words.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if either dimension is zero.
    pub fn with_dims(rows: usize, cols: usize, seed: u64) -> Result<Self, SimError> {
        if rows == 0 || cols == 0 {
            return Err(SimError::invalid_config("corner turn dimensions must be non-zero"));
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let src = (0..rows * cols).map(|_| rng.gen::<u32>()).collect();
        Ok(CornerTurnWorkload { rows, cols, src })
    }

    /// Wraps existing row-major data as a workload.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] if `data.len() != rows * cols`
    /// or either dimension is zero.
    pub fn from_data(rows: usize, cols: usize, data: Vec<u32>) -> Result<Self, SimError> {
        if rows == 0 || cols == 0 {
            return Err(SimError::invalid_config("corner turn dimensions must be non-zero"));
        }
        if data.len() != rows * cols {
            return Err(SimError::invalid_config(format!(
                "corner turn data length {} does not match {rows}x{cols}",
                data.len()
            )));
        }
        Ok(CornerTurnWorkload { rows, cols, src: data })
    }

    /// Number of matrix rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of matrix columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total elements (words).
    #[must_use]
    pub fn elements(&self) -> usize {
        self.rows * self.cols
    }

    /// The row-major source matrix.
    #[must_use]
    pub fn source(&self) -> Vec<u32> {
        self.src.clone()
    }

    /// Borrowed view of the source matrix.
    #[must_use]
    pub fn source_slice(&self) -> &[u32] {
        &self.src
    }

    /// The golden transposed result (column-major walk of the source).
    #[must_use]
    pub fn reference_transpose(&self) -> Vec<u32> {
        let mut dst = vec![0u32; self.src.len()];
        transpose_into(&self.src, self.rows, self.cols, &mut dst);
        dst
    }

    /// Blocked transpose, as used by cache-based machines (Section 3.1:
    /// "In conventional cache-based processor systems, tiling is used to
    /// reduce cache misses"). Produces the same result as
    /// [`reference_transpose`](Self::reference_transpose).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for a zero block size.
    pub fn blocked_transpose(&self, block: usize) -> Result<Vec<u32>, SimError> {
        if block == 0 {
            return Err(SimError::invalid_config("transpose block size must be non-zero"));
        }
        let mut dst = vec![0u32; self.src.len()];
        for br in (0..self.rows).step_by(block) {
            for bc in (0..self.cols).step_by(block) {
                for r in br..(br + block).min(self.rows) {
                    for c in bc..(bc + block).min(self.cols) {
                        dst[c * self.rows + r] = self.src[r * self.cols + c];
                    }
                }
            }
        }
        Ok(dst)
    }

    /// Memory demands for the Section 2.5 performance model: every element
    /// is read once and written once.
    #[must_use]
    pub fn demands_onchip(&self) -> KernelDemands {
        KernelDemands { onchip_words: 2 * self.elements() as u64, ..Default::default() }
    }

    /// Memory demands when the matrix lives off chip (Imagine, Raw): data
    /// also crosses the on-chip level (SRF/caches) on its way through.
    #[must_use]
    pub fn demands_offchip(&self) -> KernelDemands {
        let words = 2 * self.elements() as u64;
        KernelDemands { onchip_words: words, offchip_words: words, ops: 0 }
    }
}

/// Transposes `src` (row-major `rows`×`cols`) into `dst` (`cols`×`rows`).
///
/// # Panics
///
/// Panics if the slice lengths do not match `rows * cols`.
pub fn transpose_into(src: &[u32], rows: usize, cols: usize, dst: &mut [u32]) {
    assert_eq!(src.len(), rows * cols, "source length mismatch");
    assert_eq!(dst.len(), rows * cols, "destination length mismatch");
    for r in 0..rows {
        for c in 0..cols {
            dst[c * rows + r] = src[r * cols + c];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dimensions() {
        let w = CornerTurnWorkload::paper(1).unwrap();
        assert_eq!(w.rows(), 1024);
        assert_eq!(w.cols(), 1024);
        assert_eq!(w.elements(), 1024 * 1024);
    }

    #[test]
    fn rejects_zero_dims_and_bad_data() {
        assert!(CornerTurnWorkload::with_dims(0, 4, 0).is_err());
        assert!(CornerTurnWorkload::with_dims(4, 0, 0).is_err());
        assert!(CornerTurnWorkload::from_data(2, 2, vec![1, 2, 3]).is_err());
    }

    #[test]
    fn transpose_small_known_case() {
        let w = CornerTurnWorkload::from_data(2, 3, vec![1, 2, 3, 4, 5, 6]).unwrap();
        // [1 2 3; 4 5 6]^T = [1 4; 2 5; 3 6] stored row-major.
        assert_eq!(w.reference_transpose(), vec![1, 4, 2, 5, 3, 6]);
    }

    #[test]
    fn double_transpose_is_identity() {
        let w = CornerTurnWorkload::with_dims(17, 9, 7).unwrap();
        let t = w.reference_transpose();
        let back = CornerTurnWorkload::from_data(9, 17, t).unwrap().reference_transpose();
        assert_eq!(back, w.source());
    }

    #[test]
    fn blocked_matches_reference() {
        let w = CornerTurnWorkload::with_dims(33, 20, 3).unwrap();
        for block in [1usize, 4, 8, 16, 64] {
            assert_eq!(w.blocked_transpose(block).unwrap(), w.reference_transpose());
        }
        assert!(w.blocked_transpose(0).is_err());
    }

    #[test]
    fn seeded_generation_is_deterministic() {
        let a = CornerTurnWorkload::with_dims(8, 8, 99).unwrap();
        let b = CornerTurnWorkload::with_dims(8, 8, 99).unwrap();
        let c = CornerTurnWorkload::with_dims(8, 8, 100).unwrap();
        assert_eq!(a.source(), b.source());
        assert_ne!(a.source(), c.source());
    }

    #[test]
    fn demands_count_words_once_each_way() {
        let w = CornerTurnWorkload::paper(0).unwrap();
        let d = w.demands_onchip();
        assert_eq!(d.onchip_words, 2 * 1024 * 1024);
        assert_eq!(d.offchip_words, 0);
        let d = w.demands_offchip();
        assert_eq!(d.offchip_words, 2 * 1024 * 1024);
    }
}
