//! Output verification helpers shared by all machine simulators.

use triarch_fft::Cf32;
use triarch_simcore::machine::Verification;

/// Compares integer/word outputs; returns [`Verification::BitExact`] when
/// identical, otherwise [`Verification::Unchecked`].
#[must_use]
pub fn verify_words<T: PartialEq>(got: &[T], expected: &[T]) -> Verification {
    if got.len() == expected.len() && got.iter().zip(expected).all(|(a, b)| a == b) {
        Verification::BitExact
    } else {
        Verification::Unchecked
    }
}

/// Compares complex outputs, returning the maximum absolute elementwise
/// error as [`Verification::MaxError`]. A length mismatch yields
/// [`Verification::Unchecked`].
#[must_use]
pub fn verify_complex(got: &[Cf32], expected: &[Cf32]) -> Verification {
    if got.len() != expected.len() {
        return Verification::Unchecked;
    }
    let max_err = got.iter().zip(expected).map(|(a, b)| a.max_abs_diff(*b)).fold(0.0f32, f32::max);
    Verification::MaxError(max_err)
}

/// Relative tolerance used for CSLC outputs throughout the study.
///
/// Different FFT algorithms (radix-2 vs mixed radix-4) accumulate rounding
/// differently, so machine outputs match the reference to ~1e-3 of the
/// signal scale rather than bit-exactly.
pub const CSLC_TOLERANCE: f32 = 5e-3;

/// The study-wide verification tolerance for one kernel: the integer
/// kernels (corner turn, beam steering) must be bit-exact, while the
/// floating-point CSLC uses [`CSLC_TOLERANCE`]. Shared by every driver
/// that classifies run outputs (fault sweeps, design-space sweeps).
#[must_use]
pub fn tolerance(kernel: crate::Kernel) -> f32 {
    match kernel {
        crate::Kernel::CornerTurn | crate::Kernel::BeamSteering => 0.0,
        crate::Kernel::Cslc => CSLC_TOLERANCE,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn words_bit_exact() {
        assert_eq!(verify_words(&[1u32, 2, 3], &[1, 2, 3]), Verification::BitExact);
        assert_eq!(verify_words(&[1u32, 2], &[1, 2, 3]), Verification::Unchecked);
        assert_eq!(verify_words(&[1u32, 9, 3], &[1, 2, 3]), Verification::Unchecked);
    }

    #[test]
    fn complex_max_error() {
        let a = [Cf32::new(1.0, 0.0), Cf32::new(0.0, 2.0)];
        let b = [Cf32::new(1.0, 0.001), Cf32::new(0.0, 2.0)];
        match verify_complex(&a, &b) {
            Verification::MaxError(e) => assert!((e - 0.001).abs() < 1e-6),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(verify_complex(&a, &b[..1]), Verification::Unchecked);
    }

    #[test]
    fn identical_complex_is_zero_error() {
        let a = [Cf32::new(1.5, -2.5)];
        assert_eq!(verify_complex(&a, &a), Verification::MaxError(0.0));
        assert!(verify_complex(&a, &a).is_ok(0.0));
    }
}
