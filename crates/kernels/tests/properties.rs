//! Property-based tests for the kernel definitions.

use proptest::prelude::*;
use triarch_kernels::beam_steering::BeamSteeringWorkload;
use triarch_kernels::corner_turn::CornerTurnWorkload;

proptest! {
    /// Transposing twice is the identity for any dimensions.
    #[test]
    fn double_transpose_identity(rows in 1usize..48, cols in 1usize..48, seed in any::<u64>()) {
        let w = CornerTurnWorkload::with_dims(rows, cols, seed).unwrap();
        let t = w.reference_transpose();
        let back = CornerTurnWorkload::from_data(cols, rows, t).unwrap().reference_transpose();
        prop_assert_eq!(back, w.source());
    }

    /// Blocked transpose equals the reference for any block size.
    #[test]
    fn blocked_equals_reference(
        rows in 1usize..40,
        cols in 1usize..40,
        block in 1usize..64,
        seed in any::<u64>(),
    ) {
        let w = CornerTurnWorkload::with_dims(rows, cols, seed).unwrap();
        prop_assert_eq!(w.blocked_transpose(block).unwrap(), w.reference_transpose());
    }

    /// Every source element appears exactly once in the transpose.
    #[test]
    fn transpose_is_a_permutation(rows in 1usize..24, cols in 1usize..24, seed in any::<u64>()) {
        let w = CornerTurnWorkload::with_dims(rows, cols, seed).unwrap();
        let mut a = w.source();
        let mut b = w.reference_transpose();
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b);
    }

    /// Beam-steering output length and determinism for arbitrary shapes.
    #[test]
    fn beam_steering_shape_and_determinism(
        elements in 1usize..200,
        directions in 1usize..6,
        dwells in 1usize..6,
        seed in any::<u64>(),
    ) {
        let w = BeamSteeringWorkload::new(elements, directions, dwells, seed).unwrap();
        let out = w.reference_output();
        prop_assert_eq!(out.len(), elements * directions * dwells);
        prop_assert_eq!(&out, &w.reference_output());
    }

    /// The per-output phase equation matches the batch output at every
    /// index (cross-validation of the two code paths).
    #[test]
    fn beam_steering_pointwise_matches_batch(
        elements in 1usize..64,
        seed in any::<u64>(),
    ) {
        let w = BeamSteeringWorkload::new(elements, 2, 2, seed).unwrap();
        let out = w.reference_output();
        let mut idx = 0;
        for dwell in 0..w.dwells() {
            let dwell_base = (dwell as i32).wrapping_mul(w.dwell_stride());
            for d in 0..w.directions() {
                let mut acc = w.steer_bias();
                for e in 0..w.elements() {
                    prop_assert_eq!(out[idx], w.phase(e, d, dwell_base, &mut acc));
                    idx += 1;
                }
            }
        }
    }
}
