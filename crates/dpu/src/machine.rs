//! The DPU execution engine: host transfers, WRAM/MRAM DMA, tasklets.
//!
//! One [`DpuMachine`] models a whole module — every DPU owns a private
//! MRAM bank slice and shares nothing with its neighbours. A kernel runs
//! as: host bulk-pushes operands into per-DPU MRAM, [`DpuMachine::launch`]
//! boots the tasklets, each DPU moves data between its MRAM bank and its
//! WRAM scratchpad with explicit DMA and executes instructions on the
//! revolving pipeline, [`DpuMachine::sync`] closes the phase, and the
//! host bulk-pulls results back. Because DPUs run in parallel, the phase
//! charges the **makespan** (the slowest DPU) for DMA and pipeline time;
//! host transfers serialize on the single host↔module interface and are
//! charged in full as they happen.

use triarch_simcore::faults::{FaultDomain, FaultHook, NoFaults, TransferFaults};
use triarch_simcore::metrics::{Histogram, Metric, MetricsReport};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{
    CycleBudget, CycleLedger, Cycles, KernelRun, SimError, Verification, WordMemory,
};

use crate::config::DpuConfig;

/// Trace track for host↔MRAM bulk transfers and launches.
const TRACK_HOST: &str = "dpu.host";
/// Trace track for WRAM↔MRAM DMA makespans.
const TRACK_DMA: &str = "dpu.dma";
/// Trace track for revolving-pipeline makespans.
const TRACK_PIPELINE: &str = "dpu.pipeline";

/// A range of WRAM words returned by [`DpuMachine::wram_alloc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WramRange {
    /// First word of the range.
    pub start: usize,
    /// Length in words.
    pub len: usize,
}

/// Per-DPU accumulators for one launched phase.
#[derive(Debug, Clone)]
struct PhaseAcc {
    /// DMA cycles accrued by each DPU this phase.
    dma: Vec<u64>,
    /// Instructions issued by each DPU this phase.
    instrs: Vec<u64>,
    /// Running DMA total across all DPUs (watchdog bound).
    dma_spent: u64,
}

/// The DPU module state: host memory, MRAM banks, WRAM, accounting.
///
/// Generic over a [`TraceSink`] and a [`FaultHook`]; the defaults
/// ([`NullSink`], [`NoFaults`]) are statically dispatched, disabled, and
/// empty, so an untraced, unfaulted machine pays nothing for either kind
/// of instrumentation.
///
/// The WRAM buffer models the scratchpad of the DPU *currently being
/// simulated*: DPUs share no state, so programs walk them one at a time
/// within a phase and call [`DpuMachine::wram_reset`] between DPUs.
#[derive(Debug, Clone)]
pub struct DpuMachine<S: TraceSink = NullSink, F: FaultHook = NoFaults> {
    cfg: DpuConfig,
    host: WordMemory,
    mram: WordMemory,
    wram: WordMemory,
    wram_next: usize,
    /// High-water mark of WRAM allocation across the whole run (words).
    wram_peak: usize,
    /// Fixed-bucket histogram of per-transfer host↔MRAM cycles.
    host_hist: Histogram,
    ledger: CycleLedger,
    phase: Option<PhaseAcc>,
    /// Parallel work hidden under the per-phase makespan.
    hidden: Cycles,
    ops: u64,
    /// Words moved by WRAM↔MRAM DMA (the on-chip interface).
    mem_words: u64,
    /// Words moved over the host↔MRAM interface.
    host_words: u64,
    launches: u64,
    budget: CycleBudget,
    /// Watchdog activity counter: charged cycles plus the parallel DPU
    /// work hidden under each phase makespan.
    spent: u64,
    sink: S,
    faults: F,
}

impl DpuMachine<NullSink, NoFaults> {
    /// Builds an untraced machine from a configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate configurations.
    pub fn new(cfg: &DpuConfig) -> Result<Self, SimError> {
        Self::with_sink(cfg, NullSink)
    }
}

impl<S: TraceSink> DpuMachine<S, NoFaults> {
    /// Builds a machine that emits cycle-attribution events into `sink`.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate configurations.
    pub fn with_sink(cfg: &DpuConfig, sink: S) -> Result<Self, SimError> {
        Self::with_hooks(cfg, sink, NoFaults)
    }
}

impl<S: TraceSink, F: FaultHook> DpuMachine<S, F> {
    /// Builds a machine with both a trace sink and a fault hook.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate configurations.
    pub fn with_hooks(cfg: &DpuConfig, sink: S, faults: F) -> Result<Self, SimError> {
        cfg.validate()?;
        Ok(DpuMachine {
            host: WordMemory::new(cfg.host_mem_words),
            mram: WordMemory::new(cfg.dpus() * cfg.mram_words_per_dpu),
            wram: WordMemory::new(cfg.wram_words),
            wram_next: 0,
            wram_peak: 0,
            host_hist: Histogram::cycles(),
            ledger: CycleLedger::new(),
            phase: None,
            hidden: Cycles::ZERO,
            ops: 0,
            mem_words: 0,
            host_words: 0,
            launches: 0,
            budget: cfg.budget,
            spent: 0,
            cfg: cfg.clone(),
            sink,
            faults,
        })
    }

    /// Host main memory for workload setup and result extraction.
    pub fn host_mut(&mut self) -> &mut WordMemory {
        &mut self.host
    }

    /// Immutable host memory view.
    #[must_use]
    pub fn host(&self) -> &WordMemory {
        &self.host
    }

    /// WRAM contents of the DPU currently being simulated.
    #[must_use]
    pub fn wram(&self) -> &WordMemory {
        &self.wram
    }

    /// Mutable WRAM contents.
    pub fn wram_mut(&mut self) -> &mut WordMemory {
        &mut self.wram
    }

    /// Base address of one DPU's MRAM bank in the module arena.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Capacity`] for an out-of-range DPU index or a
    /// window that overruns the bank.
    fn mram_addr(&self, dpu: usize, offset: usize, len: usize) -> Result<usize, SimError> {
        if dpu >= self.cfg.dpus() {
            return Err(SimError::capacity("dpu index", dpu + 1, self.cfg.dpus()));
        }
        if offset + len > self.cfg.mram_words_per_dpu {
            return Err(SimError::capacity(
                "mram bank window",
                offset + len,
                self.cfg.mram_words_per_dpu,
            ));
        }
        Ok(dpu * self.cfg.mram_words_per_dpu + offset)
    }

    /// Allocates `words` of WRAM, aligned up to the DMA block size.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Capacity`] when the scratchpad is exhausted.
    pub fn wram_alloc(&mut self, words: usize) -> Result<WramRange, SimError> {
        let block = self.cfg.wram_block_words;
        let len = words.div_ceil(block) * block;
        if self.wram_next + len > self.cfg.wram_words {
            return Err(SimError::capacity(
                "wram scratchpad",
                self.wram_next + len,
                self.cfg.wram_words,
            ));
        }
        let range = WramRange { start: self.wram_next, len };
        self.wram_next += len;
        self.wram_peak = self.wram_peak.max(self.wram_next);
        Ok(range)
    }

    /// Releases all WRAM allocations (between DPUs or passes).
    pub fn wram_reset(&mut self) {
        self.wram_next = 0;
    }

    /// Emits a counted span and charges the breakdown.
    fn charge(
        &mut self,
        track: &'static str,
        category: &'static str,
        name: &'static str,
        cycles: Cycles,
    ) {
        if cycles == Cycles::ZERO {
            return;
        }
        self.spent += cycles.get();
        if self.sink.is_enabled() {
            let at = self.ledger.total().get();
            self.sink.span(track, category, name, at, cycles.get());
        }
        self.ledger.charge(category, cycles);
    }

    /// Cycles for one host↔MRAM bulk transfer of `len` words.
    fn host_cost(&self, len: usize) -> u64 {
        self.cfg.host_startup + (len as u64).div_ceil(self.cfg.host_words_per_cycle)
    }

    /// Cycles for one WRAM↔MRAM DMA transfer of `len` words.
    fn dma_cost(&self, len: usize) -> u64 {
        self.cfg.dma_startup + (len as u64).div_ceil(self.cfg.dma_words_per_cycle)
    }

    /// Bulk-pushes `len` words of host memory into one DPU's MRAM bank.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on out-of-bounds addresses, a detected fault,
    /// or an exhausted watchdog budget.
    pub fn host_push(
        &mut self,
        host_addr: usize,
        dpu: usize,
        mram_off: usize,
        len: usize,
    ) -> Result<(), SimError> {
        let base = self.mram_addr(dpu, mram_off, len)?;
        for i in 0..len {
            let v = self.host.read_u32(host_addr + i)?;
            self.mram.write_u32(base + i, v)?;
        }
        let cost = self.host_cost(len);
        self.host_hist.observe(cost);
        self.host_words += len as u64;
        self.charge(TRACK_HOST, "host_xfer", "host-to-mram", Cycles::new(cost));
        if self.faults.is_enabled() {
            // Words crossing the host↔module interface: flips corrupt the
            // MRAM copy (the data in flight), not the host original.
            let fx = self.faults.transfer(FaultDomain::Dram, host_addr, len);
            for flip in &fx.flips {
                let a = base + flip.offset;
                let word = self.mram.read_u32(a)?;
                self.mram.write_u32(a, word ^ flip.xor_mask)?;
            }
            self.apply_fault_costs(&fx)?;
        }
        self.budget.check(self.spent)
    }

    /// Bulk-pulls `len` words of one DPU's MRAM bank back to host memory.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] on out-of-bounds addresses, a detected fault,
    /// or an exhausted watchdog budget.
    pub fn host_pull(
        &mut self,
        dpu: usize,
        mram_off: usize,
        host_addr: usize,
        len: usize,
    ) -> Result<(), SimError> {
        let base = self.mram_addr(dpu, mram_off, len)?;
        // An active stuck-at fault in the module's output interface
        // corrupts every `dpus`-th word of the outgoing bulk transfer.
        let stuck =
            if self.faults.is_enabled() { self.faults.stuck(FaultDomain::Dram) } else { None };
        let lanes = self.cfg.dpus().max(1);
        for i in 0..len {
            let mut v = self.mram.read_u32(base + i)?;
            if let Some(fault) = stuck {
                if i % lanes == fault.index % lanes {
                    v = fault.force(v);
                }
            }
            self.host.write_u32(host_addr + i, v)?;
        }
        let cost = self.host_cost(len);
        self.host_hist.observe(cost);
        self.host_words += len as u64;
        self.charge(TRACK_HOST, "host_xfer", "mram-to-host", Cycles::new(cost));
        if self.faults.is_enabled() {
            // Words leaving over the interface: flips corrupt the host
            // destination.
            let fx = self.faults.transfer(FaultDomain::Dram, base, len);
            for flip in &fx.flips {
                let a = host_addr + flip.offset;
                let word = self.host.read_u32(a)?;
                self.host.write_u32(a, word ^ flip.xor_mask)?;
            }
            self.apply_fault_costs(&fx)?;
        }
        self.budget.check(self.spent)
    }

    /// Boots the tasklets: opens a parallel DPU phase.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] if a phase is already open, or
    /// [`SimError::BudgetExceeded`] from the watchdog.
    pub fn launch(&mut self) -> Result<(), SimError> {
        if self.phase.is_some() {
            return Err(SimError::unsupported("launch inside an open DPU phase"));
        }
        self.launches += 1;
        self.charge(TRACK_HOST, "launch", "tasklet-boot", Cycles::new(self.cfg.launch_cycles));
        if self.sink.is_enabled() {
            self.sink.instant(TRACK_PIPELINE, "phase-begin", self.ledger.total().get());
        }
        self.phase = Some(PhaseAcc {
            dma: vec![0; self.cfg.dpus()],
            instrs: vec![0; self.cfg.dpus()],
            dma_spent: 0,
        });
        self.budget.check(self.spent)
    }

    /// The open phase, or a typed error naming the misused operation.
    fn phase_mut(&mut self, what: &'static str) -> Result<&mut PhaseAcc, SimError> {
        self.phase.as_mut().ok_or_else(|| SimError::unsupported(what))
    }

    /// DMA `len` words from one DPU's MRAM bank into its WRAM.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] outside a launched phase, on out-of-bounds
    /// addresses, a detected fault, or an exhausted watchdog budget.
    pub fn dma_read(
        &mut self,
        dpu: usize,
        mram_off: usize,
        dst: WramRange,
        len: usize,
    ) -> Result<(), SimError> {
        if len > dst.len {
            return Err(SimError::capacity("wram dma range", len, dst.len));
        }
        let base = self.mram_addr(dpu, mram_off, len)?;
        for i in 0..len {
            let v = self.mram.read_u32(base + i)?;
            self.wram.write_u32(dst.start + i, v)?;
        }
        let cost = self.dma_cost(len);
        self.mem_words += len as u64;
        let spent = self.spent;
        let acc = self.phase_mut("dma_read outside a launched phase")?;
        acc.dma[dpu] += cost;
        acc.dma_spent += cost;
        let bound = spent + acc.dma_spent;
        if self.faults.is_enabled() {
            // Words crossing the bank interface: flips corrupt the WRAM
            // copy.
            let fx = self.faults.transfer(FaultDomain::Dram, base, len);
            for flip in &fx.flips {
                let a = dst.start + flip.offset;
                let word = self.wram.read_u32(a)?;
                self.wram.write_u32(a, word ^ flip.xor_mask)?;
            }
            self.apply_fault_costs(&fx)?;
        }
        self.budget.check(bound)
    }

    /// DMA `len` words from one DPU's WRAM back into its MRAM bank.
    ///
    /// # Errors
    ///
    /// Returns [`SimError`] outside a launched phase, on out-of-bounds
    /// addresses, a detected fault, or an exhausted watchdog budget.
    pub fn dma_write(
        &mut self,
        dpu: usize,
        src: WramRange,
        mram_off: usize,
        len: usize,
    ) -> Result<(), SimError> {
        if len > src.len {
            return Err(SimError::capacity("wram dma range", len, src.len));
        }
        let base = self.mram_addr(dpu, mram_off, len)?;
        for i in 0..len {
            let v = self.wram.read_u32(src.start + i)?;
            self.mram.write_u32(base + i, v)?;
        }
        let cost = self.dma_cost(len);
        self.mem_words += len as u64;
        let spent = self.spent;
        let acc = self.phase_mut("dma_write outside a launched phase")?;
        acc.dma[dpu] += cost;
        acc.dma_spent += cost;
        let bound = spent + acc.dma_spent;
        if self.faults.is_enabled() {
            // Words landing in the bank: flips corrupt the MRAM copy.
            let fx = self.faults.transfer(FaultDomain::Dram, base, len);
            for flip in &fx.flips {
                let a = base + flip.offset;
                let word = self.mram.read_u32(a)?;
                self.mram.write_u32(a, word ^ flip.xor_mask)?;
            }
            self.apply_fault_costs(&fx)?;
        }
        self.budget.check(bound)
    }

    /// Issues `instrs` pipeline instructions on one DPU, of which `ops`
    /// retire as 32-bit arithmetic (software-emulated FP issues
    /// [`DpuConfig::fp_instrs_per_op`] instructions per flop).
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] outside a launched phase.
    pub fn exec(&mut self, dpu: usize, instrs: u64, ops: u64) -> Result<(), SimError> {
        if dpu >= self.cfg.dpus() {
            return Err(SimError::capacity("dpu index", dpu + 1, self.cfg.dpus()));
        }
        self.ops += ops;
        let acc = self.phase_mut("exec outside a launched phase")?;
        acc.instrs[dpu] += instrs;
        Ok(())
    }

    /// Closes the phase: every DPU ran in parallel, so the slowest DPU's
    /// DMA and pipeline times are charged as the phase makespans
    /// (`mram_dma` and `tasklet`), and the rest of the module's work is
    /// recorded as hidden parallel cycles.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] if no phase is open, or
    /// [`SimError::BudgetExceeded`] from the watchdog.
    pub fn sync(&mut self) -> Result<(), SimError> {
        let acc = self.phase.take().ok_or_else(|| SimError::unsupported("sync without launch"))?;
        let fill = self.cfg.pipeline_fill();
        let depth = self.cfg.revolve_depth;
        let pipe: Vec<u64> = acc.instrs.iter().map(|&i| (i * depth).div_ceil(fill)).collect();
        let dma_max = acc.dma.iter().copied().max().unwrap_or(0);
        let dma_sum: u64 = acc.dma.iter().sum();
        let pipe_max = pipe.iter().copied().max().unwrap_or(0);
        let pipe_sum: u64 = pipe.iter().sum();
        self.charge(TRACK_DMA, "mram_dma", "wram-mram-dma", Cycles::new(dma_max));
        self.charge(TRACK_PIPELINE, "tasklet", "revolving-pipeline", Cycles::new(pipe_max));
        if self.sink.is_enabled() {
            self.sink.instant(TRACK_PIPELINE, "phase-end", self.ledger.total().get());
        }
        let hidden = (dma_sum - dma_max) + (pipe_sum - pipe_max);
        self.spent += hidden;
        self.hidden += Cycles::new(hidden);
        self.budget.check(self.spent)
    }

    /// Charges a fault verdict's ECC/retry costs and converts a failure
    /// into [`SimError::DetectedFault`].
    fn apply_fault_costs(&mut self, fx: &TransferFaults) -> Result<(), SimError> {
        self.charge(TRACK_HOST, "ecc", "ecc-correct", Cycles::new(fx.ecc_cycles));
        self.charge(TRACK_HOST, "retry", "transfer-retry", Cycles::new(fx.retry_cycles));
        match &fx.failure {
            Some(what) => Err(SimError::detected_fault(what.clone())),
            None => Ok(()),
        }
    }

    /// Total cycles charged so far.
    #[must_use]
    pub fn cycles(&self) -> Cycles {
        self.ledger.total()
    }

    /// Parallel DPU cycles hidden under the phase makespans.
    #[must_use]
    pub fn hidden_cycles(&self) -> Cycles {
        self.hidden
    }

    /// Consumes the machine into a [`KernelRun`].
    ///
    /// # Errors
    ///
    /// Returns [`SimError::Unsupported`] if a phase is still open.
    pub fn finish(self, verification: Verification) -> Result<KernelRun, SimError> {
        if self.phase.is_some() {
            return Err(SimError::unsupported("finish with open DPU phase"));
        }
        let breakdown = self.ledger.into_breakdown();
        let total = breakdown.total();
        let mut metrics = MetricsReport::new();
        breakdown.export_metrics(&mut metrics, "dpu.cycles");
        self.budget.export_metrics(&mut metrics, "dpu.budget", self.spent);
        metrics.ratio("dpu.wram.occupancy", self.wram_peak as u64, self.cfg.wram_words as u64);
        metrics.counter("dpu.wram.peak_words", self.wram_peak as u64);
        metrics.counter("dpu.run.ops", self.ops);
        metrics.counter("dpu.run.mem_words", self.mem_words);
        metrics.counter("dpu.run.hidden_cycles", self.hidden.get());
        metrics.counter("dpu.host.words", self.host_words);
        metrics.counter("dpu.host.launches", self.launches);
        metrics.bandwidth("dpu.run.achieved_bw", self.mem_words, total.get());
        metrics.bandwidth("dpu.run.achieved_ops", self.ops, total.get());
        metrics.set("dpu.host.xfer_cycles", Metric::Histogram(self.host_hist));
        Ok(KernelRun {
            cycles: total,
            breakdown,
            ops_executed: self.ops,
            mem_words: self.mem_words,
            verification,
            metrics,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> DpuMachine {
        DpuMachine::new(&DpuConfig::paper()).unwrap()
    }

    #[test]
    fn wram_allocation_is_block_aligned() {
        let mut m = machine();
        let a = m.wram_alloc(5).unwrap();
        assert_eq!(a.start, 0);
        assert_eq!(a.len, 6); // rounded to 8-byte DMA blocks
        let b = m.wram_alloc(4).unwrap();
        assert_eq!(b.start, 6);
        m.wram_reset();
        assert_eq!(m.wram_alloc(1).unwrap().start, 0);
    }

    #[test]
    fn wram_overflow_is_capacity_error() {
        let mut m = machine();
        let err = m.wram_alloc(1024 * 1024).unwrap_err();
        assert!(matches!(err, SimError::Capacity { .. }));
    }

    #[test]
    fn host_transfers_move_real_data() {
        let mut m = machine();
        m.host_mut().write_block_u32(10, &[1, 2, 3, 4]).unwrap();
        m.host_push(10, 3, 100, 4).unwrap();
        m.host_pull(3, 100, 500, 4).unwrap();
        assert_eq!(m.host().read_block_u32(500, 4).unwrap(), vec![1, 2, 3, 4]);
        assert!(m.cycles() > Cycles::ZERO);
        assert_eq!(m.ledger.get("host_xfer").get(), 2 * (64 + 1));
    }

    #[test]
    fn dma_moves_data_and_charges_makespan_at_sync() {
        let mut m = machine();
        m.host_mut().write_block_u32(0, &[9; 8]).unwrap();
        m.host_push(0, 0, 0, 8).unwrap();
        m.launch().unwrap();
        let r = m.wram_alloc(8).unwrap();
        m.dma_read(0, 0, r, 8).unwrap();
        m.dma_write(0, r, 64, 8).unwrap();
        assert_eq!(m.ledger.get("mram_dma"), Cycles::ZERO, "charged only at sync");
        m.sync().unwrap();
        assert_eq!(m.ledger.get("mram_dma").get(), 2 * (32 + 8));
        m.host_pull(0, 64, 100, 8).unwrap();
        assert_eq!(m.host().read_block_u32(100, 8).unwrap(), vec![9; 8]);
    }

    #[test]
    fn pipeline_rate_follows_tasklet_fill() {
        // 16 tasklets saturate the 11-deep pipeline: 1 instr/cycle.
        let mut m = machine();
        m.launch().unwrap();
        m.exec(0, 1100, 0).unwrap();
        m.sync().unwrap();
        assert_eq!(m.ledger.get("tasklet").get(), 1100);
        // 2 tasklets leave 9 of 11 slots revolving empty.
        let mut cfg = DpuConfig::paper();
        cfg.tasklets = 2;
        let mut m = DpuMachine::new(&cfg).unwrap();
        m.launch().unwrap();
        m.exec(0, 1100, 0).unwrap();
        m.sync().unwrap();
        assert_eq!(m.ledger.get("tasklet").get(), 1100 * 11 / 2);
    }

    #[test]
    fn phase_charges_slowest_dpu_and_hides_the_rest() {
        let mut m = machine();
        m.launch().unwrap();
        m.exec(0, 100, 0).unwrap();
        m.exec(1, 300, 0).unwrap();
        m.sync().unwrap();
        assert_eq!(m.ledger.get("tasklet").get(), 300);
        assert_eq!(m.hidden_cycles().get(), 100);
    }

    #[test]
    fn phase_misuse_is_error() {
        let mut m = machine();
        assert!(m.sync().is_err());
        let r = WramRange { start: 0, len: 4 };
        assert!(m.dma_read(0, 0, r, 4).is_err());
        assert!(m.exec(0, 1, 0).is_err());
        m.launch().unwrap();
        assert!(m.launch().is_err());
        assert!(m.clone().finish(Verification::Unchecked).is_err());
    }

    #[test]
    fn out_of_range_dpu_or_bank_is_capacity_error() {
        let mut m = machine();
        assert!(matches!(m.host_push(0, 128, 0, 1), Err(SimError::Capacity { .. })));
        let words = DpuConfig::paper().mram_words_per_dpu;
        assert!(matches!(m.host_push(0, 0, words, 1), Err(SimError::Capacity { .. })));
        m.launch().unwrap();
        assert!(matches!(m.exec(128, 1, 0), Err(SimError::Capacity { .. })));
    }

    #[test]
    fn finish_carries_metrics() {
        let mut m = machine();
        m.host_mut().write_block_u32(0, &[7; 64]).unwrap();
        m.host_push(0, 0, 0, 64).unwrap();
        m.launch().unwrap();
        let r = m.wram_alloc(64).unwrap();
        m.dma_read(0, 0, r, 64).unwrap();
        m.exec(0, 64, 64).unwrap();
        m.sync().unwrap();
        let run = m.finish(Verification::BitExact).unwrap();
        assert_eq!(run.metrics.counter_sum("dpu.cycles."), run.cycles.get());
        assert_eq!(run.metrics.counter_value("dpu.wram.peak_words"), Some(64));
        assert_eq!(run.metrics.counter_value("dpu.host.words"), Some(64));
        assert_eq!(run.metrics.counter_value("dpu.run.ops"), Some(64));
        assert!(run.metrics.get("dpu.host.xfer_cycles").is_some());
    }

    #[test]
    fn tiny_budget_trips_on_first_transfer() {
        let mut cfg = DpuConfig::paper();
        cfg.budget = CycleBudget::limited(10);
        let mut m = DpuMachine::new(&cfg).unwrap();
        let err = m.host_push(0, 0, 0, 4).unwrap_err();
        assert!(matches!(err, SimError::BudgetExceeded { .. }));
    }
}
