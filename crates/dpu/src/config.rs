//! DPU machine configuration (UPMEM-style, after Gómez-Luna et al.).
//!
//! The configuration follows the published shape of a 2020s commercial
//! PIM system scaled to a two-rank module: many weak in-order DPUs, one
//! per DRAM bank, each with a small WRAM scratchpad, a large private
//! MRAM bank, an 11-stage revolving pipeline fed by tasklets, and
//! software-emulated floating point. Cross-era clock/ALU/GFLOPS
//! identities are pinned the same way the paper's Table 2 rows are.

use triarch_simcore::{ClockFrequency, CycleBudget, MachineInfo, SimError, ThroughputModel};

/// Parameters of the simulated DPU machine.
#[derive(Debug, Clone, PartialEq)]
pub struct DpuConfig {
    /// DPU clock in MHz (commercial parts run ~350 MHz).
    pub clock_mhz: f64,
    /// Memory ranks on the module.
    pub ranks: usize,
    /// DPUs (DRAM banks) per rank.
    pub dpus_per_rank: usize,
    /// Tasklets (hardware threads) resident per DPU.
    pub tasklets: usize,
    /// Depth of the revolving pipeline: one tasklet may have at most one
    /// instruction in flight, so issue rate is
    /// `min(tasklets, revolve_depth) / revolve_depth` instructions/cycle.
    pub revolve_depth: u64,
    /// WRAM scratchpad per DPU, in 32-bit words (64 KB).
    pub wram_words: usize,
    /// WRAM/DMA allocation granularity in words (8-byte aligned DMA).
    pub wram_block_words: usize,
    /// MRAM bank per DPU, in 32-bit words.
    pub mram_words_per_dpu: usize,
    /// Host main memory, in 32-bit words.
    pub host_mem_words: usize,
    /// Sustained WRAM↔MRAM DMA rate per DPU, words/cycle.
    pub dma_words_per_cycle: u64,
    /// Fixed cost of issuing one WRAM↔MRAM DMA transfer, cycles.
    pub dma_startup: u64,
    /// Sustained host↔MRAM bulk-transfer rate (whole module), words/cycle.
    pub host_words_per_cycle: u64,
    /// Fixed cost of one host↔MRAM bulk transfer, cycles.
    pub host_startup: u64,
    /// Fixed cost of launching a DPU program (tasklet boot), cycles.
    pub launch_cycles: u64,
    /// Instructions per 32-bit floating-point operation (software
    /// emulation: DPUs have no FPU).
    pub fp_instrs_per_op: u64,
    /// Watchdog budget on simulated cycles (default: unlimited).
    pub budget: CycleBudget,
}

impl DpuConfig {
    /// The study's DPU machine: 2 ranks × 64 banks = 128 DPUs at
    /// 350 MHz, 16 tasklets over an 11-stage pipeline, 64 KB WRAM.
    #[must_use]
    pub fn paper() -> Self {
        DpuConfig {
            clock_mhz: 350.0,
            ranks: 2,
            dpus_per_rank: 64,
            tasklets: 16,
            revolve_depth: 11,
            wram_words: 16 * 1024,
            wram_block_words: 2,
            mram_words_per_dpu: 128 * 1024,
            host_mem_words: 4 * 1024 * 1024,
            dma_words_per_cycle: 1,
            dma_startup: 32,
            host_words_per_cycle: 4,
            host_startup: 64,
            launch_cycles: 128,
            fp_instrs_per_op: 8,
            budget: CycleBudget::UNLIMITED,
        }
    }

    /// Total DPUs on the module.
    #[must_use]
    pub fn dpus(&self) -> usize {
        self.ranks * self.dpus_per_rank
    }

    /// Effective tasklet occupancy of the revolving pipeline.
    #[must_use]
    pub fn pipeline_fill(&self) -> u64 {
        (self.tasklets as u64).min(self.revolve_depth).max(1)
    }

    /// Cross-era identity row: every DPU counts as one (integer) ALU;
    /// peak GFLOPS is derated by the software-FP emulation factor.
    #[must_use]
    pub fn machine_info(&self) -> MachineInfo {
        MachineInfo {
            name: "DPU",
            clock: ClockFrequency::from_mhz(self.clock_mhz),
            alu_count: self.dpus() as u32,
            peak_gflops: self.clock_mhz * self.dpus() as f64
                / self.fp_instrs_per_op as f64
                / 1000.0,
            throughput: ThroughputModel::dpu(),
        }
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate parameters.
    pub fn validate(&self) -> Result<(), SimError> {
        if self.ranks == 0 || self.dpus_per_rank == 0 {
            return Err(SimError::invalid_config("dpu machine needs ranks with banks"));
        }
        if self.tasklets == 0 || self.revolve_depth == 0 {
            return Err(SimError::invalid_config("dpu needs tasklets and a pipeline"));
        }
        if self.wram_words == 0 || self.wram_block_words == 0 {
            return Err(SimError::invalid_config("dpu WRAM must be non-empty"));
        }
        if self.wram_block_words > self.wram_words {
            return Err(SimError::invalid_config("dpu WRAM block exceeds WRAM size"));
        }
        if self.mram_words_per_dpu == 0 || self.host_mem_words == 0 {
            return Err(SimError::invalid_config("dpu needs MRAM banks and host memory"));
        }
        if self.dma_words_per_cycle == 0 || self.host_words_per_cycle == 0 {
            return Err(SimError::invalid_config("dpu transfer rates must be positive"));
        }
        if self.fp_instrs_per_op == 0 {
            return Err(SimError::invalid_config("dpu FP emulation factor must be positive"));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_matches_identity_row() {
        let cfg = DpuConfig::paper();
        cfg.validate().unwrap();
        assert_eq!(cfg.dpus(), 128);
        assert_eq!(cfg.pipeline_fill(), 11);
        let info = cfg.machine_info();
        assert_eq!(info.name, "DPU");
        assert_eq!(info.clock.mhz(), 350.0);
        assert_eq!(info.alu_count, 128);
        assert!((info.peak_gflops - 5.6).abs() < 1e-9);
    }

    #[test]
    fn pipeline_fill_saturates_at_depth() {
        let mut cfg = DpuConfig::paper();
        cfg.tasklets = 2;
        assert_eq!(cfg.pipeline_fill(), 2);
        cfg.tasklets = 24;
        assert_eq!(cfg.pipeline_fill(), 11);
    }

    #[test]
    fn validation_rejects_degenerate() {
        let mut cfg = DpuConfig::paper();
        cfg.ranks = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = DpuConfig::paper();
        cfg.tasklets = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = DpuConfig::paper();
        cfg.wram_block_words = cfg.wram_words + 1;
        assert!(cfg.validate().is_err());
        let mut cfg = DpuConfig::paper();
        cfg.host_words_per_cycle = 0;
        assert!(cfg.validate().is_err());
        let mut cfg = DpuConfig::paper();
        cfg.fp_instrs_per_op = 0;
        assert!(cfg.validate().is_err());
    }
}
