//! UPMEM-style DPU-per-DRAM-bank PIM simulator.
//!
//! A modern (2020s) processing-in-memory machine for the cross-era
//! comparison: `ranks × dpus_per_rank` weak in-order DPUs, one per DRAM
//! bank, each with a private WRAM scratchpad, a multi-threaded revolving
//! pipeline fed by tasklets, explicit WRAM↔MRAM DMA, software-emulated
//! floating point, and — crucially — **no inter-DPU network**. Every
//! byte that moves between DPUs rides the narrow host interface, which
//! is what makes the corner turn expensive here and cheap on the 2003
//! on-chip PIM (VIRAM). The model reproduces the mechanisms the PrIM
//! benchmarking literature identifies:
//!
//! - **tasklet pipelining**: the pipeline retires one instruction per
//!   cycle only when at least `revolve_depth` tasklets are resident;
//!   fewer tasklets leave revolver slots empty;
//! - **explicit WRAM↔MRAM DMA** with a per-transfer startup, so strided
//!   access pays one transfer per row segment (the strided-access tax);
//! - **host↔MRAM bulk transfers** over a low-bandwidth interface;
//! - **software floating point**: each flop issues
//!   [`DpuConfig::fp_instrs_per_op`] pipeline instructions.
//!
//! Kernels are data-accurate: operands really move host → MRAM → WRAM →
//! MRAM → host and outputs verify against the golden reference.
//!
//! # Example
//!
//! ```
//! use triarch_kernels::{BeamSteeringWorkload, SignalMachine};
//! use triarch_dpu::Dpu;
//!
//! # fn main() -> Result<(), triarch_simcore::SimError> {
//! let mut machine = Dpu::new()?;
//! let workload = BeamSteeringWorkload::new(256, 4, 2, 3)?;
//! let run = machine.beam_steering(&workload)?;
//! assert!(run.verification.is_ok(0.0));
//! # Ok(())
//! # }
//! ```

#![warn(clippy::unwrap_used, clippy::expect_used)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

pub mod config;
pub mod machine;
pub mod programs;

pub use config::DpuConfig;
pub use machine::{DpuMachine, WramRange};

use triarch_kernels::{BeamSteeringWorkload, CornerTurnWorkload, CslcWorkload, SignalMachine};
use triarch_simcore::faults::FaultHook;
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{CycleBudget, KernelRun, MachineInfo, SimError};

/// The DPU machine: configuration plus the scorecard identity.
#[derive(Debug, Clone)]
pub struct Dpu {
    config: DpuConfig,
    info: MachineInfo,
}

impl Dpu {
    /// Creates a DPU module with the reference parameters (350 MHz,
    /// 128 DPUs, 5.6 peak GFLOPS under software FP emulation).
    ///
    /// # Errors
    ///
    /// Never fails for the default configuration.
    pub fn new() -> Result<Self, SimError> {
        Self::with_config(DpuConfig::paper())
    }

    /// Creates a DPU module from an explicit configuration.
    ///
    /// # Errors
    ///
    /// Returns [`SimError::InvalidConfig`] for degenerate parameters.
    pub fn with_config(config: DpuConfig) -> Result<Self, SimError> {
        config.validate()?;
        let info = config.machine_info();
        Ok(Dpu { config, info })
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &DpuConfig {
        &self.config
    }
}

impl SignalMachine for Dpu {
    fn info(&self) -> &MachineInfo {
        &self.info
    }

    fn set_cycle_budget(&mut self, budget: CycleBudget) {
        self.config.budget = budget;
    }

    fn corner_turn(&mut self, workload: &CornerTurnWorkload) -> Result<KernelRun, SimError> {
        programs::corner_turn::run(&self.config, workload)
    }

    fn cslc(&mut self, workload: &CslcWorkload) -> Result<KernelRun, SimError> {
        programs::cslc::run(&self.config, workload)
    }

    fn beam_steering(&mut self, workload: &BeamSteeringWorkload) -> Result<KernelRun, SimError> {
        programs::beam_steering::run(&self.config, workload)
    }

    fn corner_turn_traced(
        &mut self,
        workload: &CornerTurnWorkload,
        sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        programs::corner_turn::run_traced(&self.config, workload, sink)
    }

    fn cslc_traced(
        &mut self,
        workload: &CslcWorkload,
        sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        programs::cslc::run_traced(&self.config, workload, sink)
    }

    fn beam_steering_traced(
        &mut self,
        workload: &BeamSteeringWorkload,
        sink: &mut dyn TraceSink,
    ) -> Result<KernelRun, SimError> {
        programs::beam_steering::run_traced(&self.config, workload, sink)
    }

    fn corner_turn_faulted(
        &mut self,
        workload: &CornerTurnWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError> {
        programs::corner_turn::run_faulted(&self.config, workload, NullSink, faults)
    }

    fn cslc_faulted(
        &mut self,
        workload: &CslcWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError> {
        programs::cslc::run_faulted(&self.config, workload, NullSink, faults)
    }

    fn beam_steering_faulted(
        &mut self,
        workload: &BeamSteeringWorkload,
        faults: &mut dyn FaultHook,
    ) -> Result<KernelRun, SimError> {
        programs::beam_steering::run_faulted(&self.config, workload, NullSink, faults)
    }
}

// Compile-time proof the engine is `Send`-clean: it is plain data
// (configuration + identity; run state lives inside each program), so a
// parallel batch driver may move it into a pool job. Adding a non-`Send`
// field breaks this assertion instead of a distant driver build.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Dpu>();
};

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_kernels::WorkloadSet;

    #[test]
    fn machine_identity_matches_scorecard() {
        let m = Dpu::new().unwrap();
        assert_eq!(m.info().name, "DPU");
        assert_eq!(m.info().clock.mhz(), 350.0);
        assert_eq!(m.info().alu_count, 128);
        assert!((m.info().peak_gflops - 5.6).abs() < 1e-9);
    }

    #[test]
    fn small_workloads_verify() {
        let mut m = Dpu::new().unwrap();
        let w = WorkloadSet::small(2).unwrap();
        let ct = m.corner_turn(&w.corner_turn).unwrap();
        assert!(ct.verification.is_ok(0.0));
        let bs = m.beam_steering(&w.beam_steering).unwrap();
        assert!(bs.verification.is_ok(0.0));
        let cs = m.cslc(&w.cslc).unwrap();
        assert!(cs.verification.is_ok(triarch_kernels::verify::CSLC_TOLERANCE));
    }
}
