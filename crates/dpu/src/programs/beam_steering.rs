//! DPU beam steering: element-partitioned integer phase computation.
//!
//! Antenna elements partition across DPUs; each DPU holds its slice of
//! both calibration tables resident in WRAM (they are tiny) and computes
//! every dwell × direction phase for its own elements with cheap integer
//! adds and shifts — the one kernel where the DPU's integer pipeline is
//! used at full rate. The per-direction phase accumulator is a closed
//! form (`bias + inc·(element+1)`), so partitioning by element needs no
//! cross-DPU carry. Outputs accumulate in the bank and return to the
//! host in one bulk pull per DPU; the host interleaves them into the
//! `[dwell][direction][element]` output order.

use triarch_kernels::beam_steering::BeamSteeringWorkload;
use triarch_kernels::verify::verify_words;
use triarch_simcore::faults::{FaultHook, NoFaults};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{KernelRun, SimError};

use crate::config::DpuConfig;
use crate::machine::DpuMachine;

/// Pipeline instructions per output: 2 table loads, 5 adds, 1 shift,
/// 1 store (all single-issue integer instructions).
const INSTRS_PER_OUTPUT: u64 = 9;

/// Runs beam steering on the DPU module.
///
/// # Errors
///
/// Returns [`SimError`] when the per-DPU tables/outputs exceed an MRAM
/// bank or the WRAM scratchpad, or host memory is exhausted.
pub fn run(cfg: &DpuConfig, workload: &BeamSteeringWorkload) -> Result<KernelRun, SimError> {
    run_traced(cfg, workload, NullSink)
}

/// Like [`run`], but emits cycle-attribution trace events into `sink`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced<S: TraceSink>(
    cfg: &DpuConfig,
    workload: &BeamSteeringWorkload,
    sink: S,
) -> Result<KernelRun, SimError> {
    run_faulted(cfg, workload, sink, NoFaults)
}

/// Like [`run_traced`], but additionally consults `faults` at every
/// host/DMA transfer and applies its effects.
///
/// # Errors
///
/// Same as [`run`], plus [`SimError::DetectedFault`] /
/// [`SimError::BudgetExceeded`] from the hook and watchdog.
pub fn run_faulted<S: TraceSink, F: FaultHook>(
    cfg: &DpuConfig,
    workload: &BeamSteeringWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    let e = workload.elements();
    let dirs = workload.directions();
    let dwells = workload.dwells();
    let beams = dwells * dirs;
    let dpus = cfg.dpus();
    let epd = e.div_ceil(dpus); // elements per DPU

    // Host layout: the two calibration tables, the output matrix, one
    // per-DPU staging buffer for bulk pulls.
    let cal_a_base = 0usize;
    let cal_b_base = e;
    let out_base = 2 * e;
    let stage_base = out_base + workload.outputs();
    let needed = stage_base + beams * epd;
    if needed > cfg.host_mem_words {
        return Err(SimError::capacity("dpu host memory", needed, cfg.host_mem_words));
    }
    // Per-DPU MRAM bank layout: table slices, then the output block.
    let mram_out = 2 * epd;
    if mram_out + beams * epd > cfg.mram_words_per_dpu {
        return Err(SimError::capacity(
            "mram bank (beam outputs)",
            mram_out + beams * epd,
            cfg.mram_words_per_dpu,
        ));
    }

    let mut m = DpuMachine::with_hooks(cfg, sink, faults)?;
    let cal_a: Vec<u32> = workload.cal_coarse().iter().map(|&v| v as u32).collect();
    let cal_b: Vec<u32> = workload.cal_fine().iter().map(|&v| v as u32).collect();
    m.host_mut().write_block_u32(cal_a_base, &cal_a)?;
    m.host_mut().write_block_u32(cal_b_base, &cal_b)?;

    let slice = |d: usize| {
        let e0 = d * epd;
        (e0, epd.min(e.saturating_sub(e0)))
    };

    // Scatter: each DPU receives its slice of both tables, once.
    for d in 0..dpus {
        let (e0, n) = slice(d);
        if n == 0 {
            break;
        }
        m.host_push(cal_a_base + e0, d, 0, n)?;
        m.host_push(cal_b_base + e0, d, epd, n)?;
    }

    m.launch()?;
    for d in 0..dpus {
        let (e0, n) = slice(d);
        if n == 0 {
            break;
        }
        m.wram_reset();
        let a_w = m.wram_alloc(n)?;
        let b_w = m.wram_alloc(n)?;
        let o_w = m.wram_alloc(beams * n)?;
        m.dma_read(d, 0, a_w, n)?;
        m.dma_read(d, epd, b_w, n)?;

        for dwell in 0..dwells {
            let dwell_base = (dwell as i32).wrapping_mul(workload.dwell_stride());
            for dir in 0..dirs {
                let inc = workload.phase_inc()[dir];
                for i in 0..n {
                    let elem = e0 + i;
                    let ca = m.wram().read_u32(a_w.start + i)? as i32;
                    let cb = m.wram().read_u32(b_w.start + i)? as i32;
                    // Closed-form accumulator: bias + inc·(element+1), so
                    // element partitioning needs no cross-DPU carry.
                    let acc = workload.steer_bias().wrapping_add(inc.wrapping_mul(elem as i32 + 1));
                    let sum = ca
                        .wrapping_add(cb)
                        .wrapping_add(workload.dir_offset()[dir])
                        .wrapping_add(dwell_base)
                        .wrapping_add(acc);
                    let out = sum >> workload.shift();
                    m.wram_mut().write_u32(o_w.start + (dwell * dirs + dir) * n + i, out as u32)?;
                }
            }
        }
        let outputs_local = (beams * n) as u64;
        m.exec(d, INSTRS_PER_OUTPUT * outputs_local, 6 * outputs_local)?;
        m.dma_write(d, o_w, mram_out, beams * n)?;
    }
    m.sync()?;

    // Gather: one bulk pull per DPU; the host interleaves each DPU's
    // `[dwell][dir][local]` block into the global output order.
    for d in 0..dpus {
        let (e0, n) = slice(d);
        if n == 0 {
            break;
        }
        m.host_pull(d, mram_out, stage_base, beams * n)?;
        for b in 0..beams {
            let block = m.host().read_block_u32(stage_base + b * n, n)?;
            m.host_mut().write_block_u32(out_base + b * e + e0, &block)?;
        }
    }

    let raw = m.host().read_block_u32(out_base, workload.outputs())?;
    let got: Vec<i32> = raw.into_iter().map(|v| v as i32).collect();
    let verification = verify_words(&got, &workload.reference_output());
    m.finish(verification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_simcore::Verification;

    #[test]
    fn output_is_bit_exact() {
        let w = BeamSteeringWorkload::new(300, 4, 2, 8).unwrap();
        let run = run(&DpuConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
    }

    #[test]
    fn paper_shape_is_bit_exact_and_integer_rate() {
        let w = BeamSteeringWorkload::paper(8).unwrap();
        let run = run(&DpuConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
        // Integer kernel: no FP emulation factor on the pipeline term.
        assert_eq!(run.ops_executed, 51_456 * 6);
    }

    #[test]
    fn elements_not_divisible_by_dpus_still_verify() {
        let w = BeamSteeringWorkload::new(130, 3, 2, 1).unwrap();
        let run = run(&DpuConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
    }

    #[test]
    fn host_pull_of_outputs_dominates_transfers() {
        let w = BeamSteeringWorkload::paper(8).unwrap();
        let run = run(&DpuConfig::paper(), &w).unwrap();
        // Outputs outnumber table words 16:1, and they all cross the
        // host interface.
        assert!(run.breakdown.fraction("host_xfer") > 0.4);
    }

    #[test]
    fn oversized_outputs_are_capacity_error() {
        let mut cfg = DpuConfig::paper();
        cfg.ranks = 1;
        cfg.dpus_per_rank = 1;
        let w = BeamSteeringWorkload::new(60_000, 4, 2, 0).unwrap();
        assert!(matches!(run(&cfg, &w), Err(SimError::Capacity { .. })));
    }
}
