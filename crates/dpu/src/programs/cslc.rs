//! DPU CSLC: sub-band-parallel, compute-starved.
//!
//! Sub-bands are independent, so they partition perfectly across DPUs —
//! each DPU pulls its sub-band's four channel windows and four weight
//! vectors from its own MRAM bank into WRAM, runs the forward FFTs,
//! weight application, and inverse FFTs locally, and DMAs the cancelled
//! outputs back. Nothing ever crosses between DPUs, which makes this the
//! mapping-friendly kernel. What hurts is the pipeline itself: DPUs have
//! no FPU, so every 32-bit flop issues
//! [`DpuConfig::fp_instrs_per_op`](crate::DpuConfig::fp_instrs_per_op)
//! emulation instructions, and with only ~73 sub-bands most of the
//! 128-DPU module idles while the busy banks grind emulated arithmetic.

use triarch_fft::{Cf32, Fft};
use triarch_kernels::cslc::CslcWorkload;
use triarch_kernels::verify::verify_complex;
use triarch_simcore::faults::{FaultHook, NoFaults};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{KernelRun, SimError, WordMemory};

use crate::config::DpuConfig;
use crate::machine::{DpuMachine, WramRange};

fn wram_complex<S: TraceSink, F: FaultHook>(
    m: &DpuMachine<S, F>,
    range: WramRange,
    n: usize,
) -> Result<Vec<Cf32>, SimError> {
    let words = m.wram().read_block_u32(range.start, 2 * n)?;
    Ok(words
        .chunks_exact(2)
        .map(|p| Cf32::new(f32::from_bits(p[0]), f32::from_bits(p[1])))
        .collect())
}

fn wram_write_complex<S: TraceSink, F: FaultHook>(
    m: &mut DpuMachine<S, F>,
    range: WramRange,
    data: &[Cf32],
) -> Result<(), SimError> {
    for (i, v) in data.iter().enumerate() {
        m.wram_mut().write_u32(range.start + 2 * i, v.re.to_bits())?;
        m.wram_mut().write_u32(range.start + 2 * i + 1, v.im.to_bits())?;
    }
    Ok(())
}

/// Runs CSLC on the DPU module.
///
/// # Errors
///
/// Returns [`SimError`] when a sub-band slot exceeds an MRAM bank, the
/// working set exceeds WRAM, host memory is exhausted, or the FFT length
/// is not a power of two.
pub fn run(cfg: &DpuConfig, workload: &CslcWorkload) -> Result<KernelRun, SimError> {
    run_traced(cfg, workload, NullSink)
}

/// Like [`run`], but emits cycle-attribution trace events into `sink`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced<S: TraceSink>(
    cfg: &DpuConfig,
    workload: &CslcWorkload,
    sink: S,
) -> Result<KernelRun, SimError> {
    run_faulted(cfg, workload, sink, NoFaults)
}

/// Like [`run_traced`], but additionally consults `faults` at every
/// host/DMA transfer and applies its effects.
///
/// # Errors
///
/// Same as [`run`], plus [`SimError::DetectedFault`] /
/// [`SimError::BudgetExceeded`] from the hook and watchdog.
pub fn run_faulted<S: TraceSink, F: FaultHook>(
    cfg: &DpuConfig,
    workload: &CslcWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    let c = *workload.config();
    let n = c.fft_len;
    let hop = c.hop();
    let channels = c.main_channels + c.aux_channels;
    let weights = c.main_channels * c.aux_channels;
    let band_words = c.subbands * n * 2; // interleaved complex

    // Host layout: channels (interleaved complex), weights, output.
    let ch_base = |ch: usize| ch * c.samples * 2;
    let w_base = channels * c.samples * 2;
    let weights_at = |mc: usize, a: usize| w_base + (mc * c.aux_channels + a) * band_words;
    let out_base = w_base + weights * band_words;
    let out_at = |mc: usize, s: usize| out_base + (mc * c.subbands + s) * n * 2;
    let needed = out_base + c.main_channels * band_words;
    if needed > cfg.host_mem_words {
        return Err(SimError::capacity("dpu host memory", needed, cfg.host_mem_words));
    }

    // Sub-band ownership: contiguous slots per DPU. One MRAM slot holds
    // the sub-band's channel windows, weight vectors, and outputs.
    let dpus = cfg.dpus();
    let bands_per_dpu = c.subbands.div_ceil(dpus);
    let slot_words = (channels + weights + c.main_channels) * 2 * n;
    if bands_per_dpu * slot_words > cfg.mram_words_per_dpu {
        return Err(SimError::capacity(
            "mram bank (sub-band slots)",
            bands_per_dpu * slot_words,
            cfg.mram_words_per_dpu,
        ));
    }
    let owner = |s: usize| (s / bands_per_dpu, s % bands_per_dpu);
    let win_off = |slot: usize, ch: usize| slot * slot_words + ch * 2 * n;
    let wt_off = |slot: usize, k: usize| slot * slot_words + (channels + k) * 2 * n;
    let out_off = |slot: usize, mc: usize| slot * slot_words + (channels + weights + mc) * 2 * n;

    let forward = Fft::forward(n).map_err(|e| SimError::unsupported(e.to_string()))?;
    let inverse = Fft::inverse(n).map_err(|e| SimError::unsupported(e.to_string()))?;
    let per_fft = c.fft_opcount_radix4();
    let fft_flops = per_fft.total();

    let mut m = DpuMachine::with_hooks(cfg, sink, faults)?;

    // Stage resident data in host memory (interleaved complex).
    let stage = |mem: &mut WordMemory, base: usize, data: &[Cf32]| -> Result<(), SimError> {
        for (i, v) in data.iter().enumerate() {
            mem.write_u32(base + 2 * i, v.re.to_bits())?;
            mem.write_u32(base + 2 * i + 1, v.im.to_bits())?;
        }
        Ok(())
    };
    for ch in 0..channels {
        let data = if ch < c.main_channels {
            workload.main_channel(ch)
        } else {
            workload.aux_channel(ch - c.main_channels)
        };
        stage(m.host_mut(), ch_base(ch), data)?;
    }
    for mc in 0..c.main_channels {
        for a in 0..c.aux_channels {
            stage(m.host_mut(), weights_at(mc, a), workload.weights(mc, a))?;
        }
    }

    // Scatter: each sub-band's windows and weights go to its owner bank.
    for s in 0..c.subbands {
        let (d, slot) = owner(s);
        for ch in 0..channels {
            m.host_push(ch_base(ch) + s * hop * 2, d, win_off(slot, ch), 2 * n)?;
        }
        for mc in 0..c.main_channels {
            for a in 0..c.aux_channels {
                let k = mc * c.aux_channels + a;
                m.host_push(weights_at(mc, a) + s * n * 2, d, wt_off(slot, k), 2 * n)?;
            }
        }
    }

    m.launch()?;
    for s in 0..c.subbands {
        let (d, slot) = owner(s);
        m.wram_reset();
        let ch_ranges: Vec<WramRange> =
            (0..channels).map(|_| m.wram_alloc(2 * n)).collect::<Result<_, _>>()?;
        let w_ranges: Vec<WramRange> =
            (0..weights).map(|_| m.wram_alloc(2 * n)).collect::<Result<_, _>>()?;
        for (ch, range) in ch_ranges.iter().enumerate() {
            m.dma_read(d, win_off(slot, ch), *range, 2 * n)?;
        }
        for (k, range) in w_ranges.iter().enumerate() {
            m.dma_read(d, wt_off(slot, k), *range, 2 * n)?;
        }

        // Forward FFTs (one per channel), all emulated in software.
        let mut spectra: Vec<Vec<Cf32>> = Vec::with_capacity(channels);
        for range in &ch_ranges {
            let mut window = wram_complex(&m, *range, n)?;
            forward.process(&mut window).map_err(|e| SimError::unsupported(e.to_string()))?;
            wram_write_complex(&mut m, *range, &window)?;
            m.exec(d, fft_flops * cfg.fp_instrs_per_op, fft_flops)?;
            spectra.push(window);
        }

        // Weight application: M(k) -= Σ_a W(k)·A(k) per main channel.
        for mc in 0..c.main_channels {
            let mut spec = spectra[mc].clone();
            for a in 0..c.aux_channels {
                let w = wram_complex(&m, w_ranges[mc * c.aux_channels + a], n)?;
                let aux = &spectra[c.main_channels + a];
                for k in 0..n {
                    spec[k] -= w[k] * aux[k];
                }
            }
            // Per (aux, bin): complex multiply (4 mul + 2 add) + complex
            // subtract (2 add).
            let wt_flops = (c.aux_channels * n * 8) as u64;
            m.exec(d, wt_flops * cfg.fp_instrs_per_op, wt_flops)?;

            // IFFT and DMA the cancelled output back to the bank.
            let mut out = spec;
            inverse.process(&mut out).map_err(|e| SimError::unsupported(e.to_string()))?;
            wram_write_complex(&mut m, ch_ranges[mc], &out)?;
            m.exec(d, fft_flops * cfg.fp_instrs_per_op, fft_flops)?;
            m.dma_write(d, ch_ranges[mc], out_off(slot, mc), 2 * n)?;
        }
    }
    m.sync()?;

    // Gather the cancelled outputs back over the host interface.
    for mc in 0..c.main_channels {
        for s in 0..c.subbands {
            let (d, slot) = owner(s);
            m.host_pull(d, out_off(slot, mc), out_at(mc, s), 2 * n)?;
        }
    }

    // Extract and verify.
    let mut out = Vec::with_capacity(c.main_channels * c.subbands * n);
    for mc in 0..c.main_channels {
        for s in 0..c.subbands {
            let words = m.host().read_block_u32(out_at(mc, s), 2 * n)?;
            out.extend(
                words
                    .chunks_exact(2)
                    .map(|p| Cf32::new(f32::from_bits(p[0]), f32::from_bits(p[1]))),
            );
        }
    }
    let verification = verify_complex(&out, &workload.reference_output());
    m.finish(verification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_kernels::cslc::CslcConfig;
    use triarch_kernels::verify::CSLC_TOLERANCE;

    #[test]
    fn small_cslc_verifies() {
        let w = CslcWorkload::new(CslcConfig::small(), 6).unwrap();
        let run = run(&DpuConfig::paper(), &w).unwrap();
        assert!(run.verification.is_ok(CSLC_TOLERANCE), "{:?}", run.verification);
    }

    #[test]
    fn emulated_fp_dominates_the_pipeline() {
        let w = CslcWorkload::new(CslcConfig::small(), 6).unwrap();
        let run = run(&DpuConfig::paper(), &w).unwrap();
        assert!(run.breakdown.get("tasklet").get() > 0);
        assert!(run.breakdown.get("mram_dma").get() > 0);
        // Software FP: the pipeline term beats the bank DMA term.
        assert!(run.breakdown.get("tasklet") > run.breakdown.get("mram_dma"));
    }

    #[test]
    fn multiple_subbands_per_dpu_verify() {
        let mut cfg = DpuConfig::paper();
        cfg.ranks = 1;
        cfg.dpus_per_rank = 2; // 7 sub-bands over 2 DPUs -> 4 slots
        let w = CslcWorkload::new(CslcConfig::small(), 6).unwrap();
        let run = run(&cfg, &w).unwrap();
        assert!(run.verification.is_ok(CSLC_TOLERANCE));
    }

    #[test]
    fn capacity_error_on_tiny_host_memory() {
        let mut cfg = DpuConfig::paper();
        cfg.host_mem_words = 4096;
        let w = CslcWorkload::new(CslcConfig::small(), 6).unwrap();
        assert!(matches!(run(&cfg, &w), Err(SimError::Capacity { .. })));
    }
}
