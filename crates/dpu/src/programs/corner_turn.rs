//! DPU corner turn: the kernel the missing inter-DPU network makes
//! expensive.
//!
//! Each DPU receives a strip of matrix rows, transposes its strip
//! locally (MRAM → WRAM → MRAM, with one DMA transfer per row segment on
//! the strided side), and hands the transposed strip back. No DPU can
//! exchange a tile with a neighbour, so assembling the full transpose is
//! the host's problem: every word of the matrix round-trips over the
//! narrow host↔MRAM interface twice, and that bulk traffic — not the
//! bank-local DMA — dominates the cycle count. The 2003 PIM (VIRAM)
//! turns the same kernel entirely inside its on-chip DRAM.

use triarch_kernels::corner_turn::CornerTurnWorkload;
use triarch_kernels::verify::verify_words;
use triarch_simcore::faults::{FaultHook, NoFaults};
use triarch_simcore::trace::{NullSink, TraceSink};
use triarch_simcore::{KernelRun, SimError};

use crate::config::DpuConfig;
use crate::machine::DpuMachine;

/// Runs the strip-partitioned corner turn.
///
/// # Errors
///
/// Returns [`SimError`] when a strip exceeds an MRAM bank, a row block
/// exceeds the WRAM scratchpad, or host memory is exhausted.
pub fn run(cfg: &DpuConfig, workload: &CornerTurnWorkload) -> Result<KernelRun, SimError> {
    run_traced(cfg, workload, NullSink)
}

/// Like [`run`], but emits cycle-attribution trace events into `sink`.
///
/// # Errors
///
/// Same as [`run`].
pub fn run_traced<S: TraceSink>(
    cfg: &DpuConfig,
    workload: &CornerTurnWorkload,
    sink: S,
) -> Result<KernelRun, SimError> {
    run_faulted(cfg, workload, sink, NoFaults)
}

/// Like [`run_traced`], but additionally consults `faults` at every
/// host/DMA transfer and applies its effects.
///
/// # Errors
///
/// Same as [`run`], plus [`SimError::DetectedFault`] /
/// [`SimError::BudgetExceeded`] from the hook and watchdog.
pub fn run_faulted<S: TraceSink, F: FaultHook>(
    cfg: &DpuConfig,
    workload: &CornerTurnWorkload,
    sink: S,
    faults: F,
) -> Result<KernelRun, SimError> {
    let rows = workload.rows();
    let cols = workload.cols();
    let dpus = cfg.dpus();
    let rows_per_dpu = rows.div_ceil(dpus);
    let strip_cap = rows_per_dpu * cols;

    // Host layout: source matrix, transposed destination, one strip-sized
    // staging buffer for bulk pulls.
    let src_base = 0usize;
    let dst_base = rows * cols;
    let stage_base = 2 * rows * cols;
    let needed = stage_base + strip_cap;
    if needed > cfg.host_mem_words {
        return Err(SimError::capacity("dpu host memory", needed, cfg.host_mem_words));
    }
    // Per-DPU MRAM bank layout: input strip, then transposed strip.
    if 2 * strip_cap > cfg.mram_words_per_dpu {
        return Err(SimError::capacity(
            "mram bank (row strip)",
            2 * strip_cap,
            cfg.mram_words_per_dpu,
        ));
    }

    let mut m = DpuMachine::with_hooks(cfg, sink, faults)?;
    m.host_mut().write_block_u32(src_base, workload.source_slice())?;

    // Scatter: one bulk push per DPU carries its whole strip.
    let strip = |d: usize| {
        let r0 = d * rows_per_dpu;
        (r0, rows_per_dpu.min(rows.saturating_sub(r0)))
    };
    for d in 0..dpus {
        let (r0, h) = strip(d);
        if h == 0 {
            break;
        }
        m.host_push(src_base + r0 * cols, d, 0, h * cols)?;
    }

    m.launch()?;
    for d in 0..dpus {
        let (_, h) = strip(d);
        if h == 0 {
            break;
        }
        // Column blocks sized so an input block and its transposed output
        // block both fit the scratchpad.
        let block_cols = ((cfg.wram_words / 2) / h).max(1).min(cols);
        let mut c0 = 0;
        while c0 < cols {
            let bc = block_cols.min(cols - c0);
            m.wram_reset();
            let in_w = m.wram_alloc(h * bc)?;
            let out_w = m.wram_alloc(h * bc)?;
            // The block is strided across the row-major strip: one DMA
            // transfer per row segment (the PrIM strided-access tax).
            for r in 0..h {
                let seg = crate::machine::WramRange { start: in_w.start + r * bc, len: bc };
                m.dma_read(d, r * cols + c0, seg, bc)?;
            }
            // Tasklets route each word to its transposed slot: one load
            // and one store per word, no arithmetic.
            for r in 0..h {
                for c in 0..bc {
                    let v = m.wram().read_u32(in_w.start + r * bc + c)?;
                    m.wram_mut().write_u32(out_w.start + c * h + r, v)?;
                }
            }
            m.exec(d, 2 * (h * bc) as u64, 0)?;
            // Transposed columns are contiguous: one DMA transfer each.
            for c in 0..bc {
                let seg = crate::machine::WramRange { start: out_w.start + c * h, len: h };
                m.dma_write(d, seg, strip_cap + (c0 + c) * h, h)?;
            }
            c0 += bc;
        }
    }
    m.sync()?;

    // Gather: one bulk pull per DPU, then the host interleaves the strips
    // into the final column-major matrix. The interleave itself is host
    // CPU work off the simulated module's critical path; what the missing
    // inter-DPU network costs is the bulk round trip charged above.
    for d in 0..dpus {
        let (r0, h) = strip(d);
        if h == 0 {
            break;
        }
        m.host_pull(d, strip_cap, stage_base, cols * h)?;
        for c in 0..cols {
            let col = m.host().read_block_u32(stage_base + c * h, h)?;
            m.host_mut().write_block_u32(dst_base + c * rows + r0, &col)?;
        }
    }

    let out = m.host().read_block_u32(dst_base, rows * cols)?;
    let verification = verify_words(&out, &workload.reference_transpose());
    m.finish(verification)
}

#[cfg(test)]
mod tests {
    use super::*;
    use triarch_simcore::Verification;

    #[test]
    fn small_transpose_is_bit_exact() {
        let w = CornerTurnWorkload::with_dims(48, 40, 3).unwrap();
        let run = run(&DpuConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
    }

    #[test]
    fn paper_shape_strips_block_through_wram() {
        let w = CornerTurnWorkload::with_dims(256, 256, 5).unwrap();
        let run = run(&DpuConfig::paper(), &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
        assert!(run.breakdown.get("mram_dma").get() > 0);
    }

    #[test]
    fn fewer_dpus_than_rows_still_verifies() {
        let mut cfg = DpuConfig::paper();
        cfg.dpus_per_rank = 4; // 8 DPUs, 6 rows each
        let w = CornerTurnWorkload::with_dims(48, 64, 1).unwrap();
        let run = run(&cfg, &w).unwrap();
        assert_eq!(run.verification, Verification::BitExact);
    }

    #[test]
    fn host_round_trip_dominates() {
        let w = CornerTurnWorkload::with_dims(512, 512, 1).unwrap();
        let run = run(&DpuConfig::paper(), &w).unwrap();
        // No inter-DPU communication: the transpose pays the host bulk
        // interface in both directions, which dwarfs bank-local DMA.
        let host = run.breakdown.fraction("host_xfer");
        assert!(host > 0.5, "host fraction {host}");
        assert_eq!(run.ops_executed, 0, "pure data movement");
    }

    #[test]
    fn oversized_strip_is_capacity_error() {
        let mut cfg = DpuConfig::paper();
        cfg.dpus_per_rank = 1;
        cfg.ranks = 1; // one DPU must hold the whole matrix
        let w = CornerTurnWorkload::with_dims(512, 512, 0).unwrap();
        assert!(matches!(run(&cfg, &w), Err(SimError::Capacity { .. })));
    }
}
