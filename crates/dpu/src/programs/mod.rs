//! PrIM-style kernel programs for the DPU machine.
//!
//! Every mapping follows the same discipline the UPMEM benchmarking
//! literature arrives at: partition the data so each DPU works only on
//! its own MRAM bank, stage operands with host bulk transfers, move
//! bank data through WRAM with explicit DMA, and route *all* cross-DPU
//! data movement through the host — the machine has no inter-DPU
//! network, so there is nowhere else for it to go.

pub mod beam_steering;
pub mod corner_turn;
pub mod cslc;
