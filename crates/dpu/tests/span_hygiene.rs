//! Span-label hygiene: every counted trace span the DPU engine emits
//! must use fold-safe frame labels (`[A-Za-z0-9._/-]`), so the
//! collapsed-stack profiles in `triarch-profile` never need lossy
//! sanitization and the flamegraph color keys stay 1:1 with the
//! engine's `CycleBreakdown` categories. The fold totals must also
//! re-add to the reported cycle counts exactly (the counted-span
//! contract).

use triarch_dpu::Dpu;
use triarch_kernels::{SignalMachine, WorkloadSet};
use triarch_profile::{is_fold_safe, FoldSink};

#[test]
fn all_counted_span_labels_are_fold_safe() {
    let workloads = WorkloadSet::small(7).unwrap();
    let mut machine = Dpu::new().unwrap();

    let mut sink = FoldSink::new();
    let ct = machine.corner_turn_traced(&workloads.corner_turn, &mut sink).unwrap();
    let ct_fold = sink.into_fold();
    let mut sink = FoldSink::new();
    let cslc = machine.cslc_traced(&workloads.cslc, &mut sink).unwrap();
    let cslc_fold = sink.into_fold();
    let mut sink = FoldSink::new();
    let bs = machine.beam_steering_traced(&workloads.beam_steering, &mut sink).unwrap();
    let bs_fold = sink.into_fold();

    for (kernel, run, fold) in [
        ("corner turn", &ct, &ct_fold),
        ("cslc", &cslc, &cslc_fold),
        ("beam steering", &bs, &bs_fold),
    ] {
        assert!(!fold.is_empty(), "{kernel}: no counted spans");
        assert_eq!(fold.total(), run.cycles.get(), "{kernel}: fold drift");
        for (category, name, _) in fold.iter() {
            assert!(is_fold_safe(category), "{kernel}: unsafe category label '{category}'");
            assert!(is_fold_safe(name), "{kernel}: unsafe span label '{name}'");
        }
    }
}
