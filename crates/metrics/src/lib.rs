//! Deterministic hardware-counter observability for the `triarch` simulators.
//!
//! The trace layer (`triarch-trace`) attributes *cycles* to causes; this
//! crate is the companion layer for *rates and utilizations*: cache hit
//! rates, DRAM bank conflicts, network link traffic, register-file
//! occupancy, achieved bandwidth.  Components register typed metrics under
//! hierarchical dotted names (`viram.dram.bank_conflicts`,
//! `ppc.l2.hit_rate`, `raw.net.link_util`, `imagine.srf.occupancy`) in a
//! [`MetricsReport`], which every engine attaches to its
//! `KernelRun` alongside the `CycleBreakdown`.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Two runs of the same simulation must produce
//!    byte-identical reports regardless of worker count or host.  All
//!    storage is a [`BTreeMap`] (sorted iteration), all arithmetic is
//!    integer where the quantity is integral, and the only floating-point
//!    values are *derived* at render time from integer numerators and
//!    denominators.
//! 2. **Zero dependencies.** Like `triarch-trace`, this crate depends on
//!    nothing, so it can sit below `simcore` in the crate DAG.
//! 3. **Cheap on the hot path.** Engines accumulate plain integer fields
//!    during simulation (exactly as they did before this crate existed)
//!    and assemble the report once in `finish()`.  The [`Recorder`] trait
//!    with its [`NullRegistry`] no-op implementation exists for call sites
//!    that want to stream observations; the compiler erases the null case.
//!
//! # Metric types
//!
//! - [`Metric::Counter`] — monotonically increasing integer event count.
//! - [`Metric::Gauge`] — instantaneous scalar (merge takes the max).
//! - [`Ratio`] — `num/den` kept as integers so hit rates merge exactly.
//! - [`Bandwidth`] — `words/cycles`, the achieved-rate primitive behind
//!   the roofline utilization scorecard.
//! - [`Histogram`] — fixed-bucket cycle histogram whose merge is
//!   associative and commutative (property-tested in
//!   `tests/metrics_validation.rs`).
//!
//! # Exposition
//!
//! [`MetricsReport::render_prometheus`] emits the Prometheus text format
//! (dots become underscores, ratios/bandwidths expand to
//! `_num`/`_den`/value triples, histograms to `_bucket{le=…}` series);
//! [`MetricsReport::render_json`] emits a schema-stable JSON object.  Both
//! are hand-rolled — the workspace has no serde.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(test, allow(clippy::unwrap_used, clippy::expect_used))]

use std::collections::BTreeMap;
use std::fmt;

/// An exact rational observation: `num` events out of `den` opportunities.
///
/// Stored as integers so that merging two ratios (componentwise addition)
/// is exact and order-independent, unlike averaging floats.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Ratio {
    /// Numerator (e.g. cache hits).
    pub num: u64,
    /// Denominator (e.g. total accesses).
    pub den: u64,
}

impl Ratio {
    /// Builds a ratio.
    #[must_use]
    pub fn new(num: u64, den: u64) -> Self {
        Ratio { num, den }
    }

    /// The ratio as a float; `0.0` when the denominator is zero.
    #[must_use]
    pub fn value(&self) -> f64 {
        if self.den == 0 {
            0.0
        } else {
            self.num as f64 / self.den as f64
        }
    }
}

/// An achieved transfer rate: `words` moved over `cycles` of activity.
///
/// Kept as integers for exact, order-independent merging; the
/// words-per-cycle rate is derived at render time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Bandwidth {
    /// 32-bit words moved.
    pub words: u64,
    /// Cycles over which they moved.
    pub cycles: u64,
}

impl Bandwidth {
    /// Builds a bandwidth observation.
    #[must_use]
    pub fn new(words: u64, cycles: u64) -> Self {
        Bandwidth { words, cycles }
    }

    /// Achieved words per cycle; `0.0` when no cycles elapsed.
    #[must_use]
    pub fn words_per_cycle(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.words as f64 / self.cycles as f64
        }
    }
}

/// Power-of-two bucket edges used by [`Histogram::cycles`]: 1, 2, 4, …, 2^24.
pub const CYCLE_EDGES: [u64; 25] = {
    let mut edges = [0u64; 25];
    let mut i = 0;
    while i < 25 {
        edges[i] = 1u64 << i;
        i += 1;
    }
    edges
};

/// A fixed-bucket histogram of integer observations (typically cycle
/// durations).
///
/// The bucket edges are fixed at construction; `counts[i]` holds
/// observations `<= edges[i]` (and `> edges[i-1]`), with one overflow
/// bucket at the end for observations above the last edge.  Because the
/// edges never change, [`Histogram::merge`] is plain vector addition —
/// associative and commutative by construction, which is what makes
/// metrics reports independent of job scheduling order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    edges: Vec<u64>,
    counts: Vec<u64>,
    sum: u64,
    total: u64,
    /// True when `edges[i] == 1 << i` for all i, enabling an O(1)
    /// bit-arithmetic bucket lookup on the hot observe path.
    pow2: bool,
}

impl Histogram {
    /// Builds an empty histogram over the given ascending bucket edges.
    ///
    /// # Panics
    ///
    /// Panics if `edges` is empty or not strictly ascending.
    #[must_use]
    pub fn with_edges(edges: &[u64]) -> Self {
        assert!(!edges.is_empty(), "histogram needs at least one bucket edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "histogram edges must be strictly ascending"
        );
        let pow2 = edges.iter().enumerate().all(|(i, &e)| i < 64 && e == 1u64 << i);
        Histogram {
            edges: edges.to_vec(),
            counts: vec![0; edges.len() + 1],
            sum: 0,
            total: 0,
            pow2,
        }
    }

    /// The standard cycle-duration histogram (power-of-two edges).
    #[must_use]
    pub fn cycles() -> Self {
        Self::with_edges(&CYCLE_EDGES)
    }

    /// Records one observation.
    #[inline]
    pub fn observe(&mut self, value: u64) {
        // Bucket index = number of edges strictly below `value`. For the
        // standard power-of-two edges that is `ceil(log2(value))`,
        // computable in O(1) from the leading-zero count — engines call
        // this per DRAM transfer, so the binary search is worth skipping.
        let idx = if self.pow2 {
            if value <= 1 {
                0
            } else {
                (64 - (value - 1).leading_zeros() as usize).min(self.edges.len())
            }
        } else {
            self.edges.partition_point(|&e| e < value)
        };
        self.counts[idx] += 1;
        self.sum += value;
        self.total += 1;
    }

    /// Merges another histogram into this one.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::BucketMismatch`] if the edge vectors differ.
    pub fn merge(&mut self, other: &Histogram) -> Result<(), MetricsError> {
        if self.edges != other.edges {
            return Err(MetricsError::BucketMismatch);
        }
        for (c, o) in self.counts.iter_mut().zip(other.counts.iter()) {
            *c += o;
        }
        self.sum += other.sum;
        self.total += other.total;
        Ok(())
    }

    /// Bucket edges.
    #[must_use]
    pub fn edges(&self) -> &[u64] {
        &self.edges
    }

    /// Per-bucket counts (one overflow bucket beyond the last edge).
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Sum of all observed values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Mean observation; `0.0` when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) from the bucket
    /// counts, interpolating linearly inside the owning bucket — the
    /// same estimator Prometheus' `histogram_quantile` uses, so a
    /// client reading the `_bucket{le=…}` exposition computes the same
    /// figure the server would.
    ///
    /// Observations landing in the overflow bucket are reported as the
    /// last edge (there is no upper bound to interpolate toward).
    /// Returns `0.0` for an empty histogram; `q` is clamped to
    /// `[0.0, 1.0]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let rank = q.clamp(0.0, 1.0) * self.total as f64;
        let mut cumulative = 0u64;
        for (i, count) in self.counts.iter().enumerate() {
            let below = cumulative as f64;
            cumulative += count;
            if (cumulative as f64) < rank || *count == 0 {
                continue;
            }
            let Some(&upper) = self.edges.get(i) else {
                // Overflow bucket: unbounded above, report the last edge.
                return self.edges[self.edges.len() - 1] as f64;
            };
            let lower = if i == 0 { 0.0 } else { self.edges[i - 1] as f64 };
            let fraction = ((rank - below) / *count as f64).clamp(0.0, 1.0);
            return lower + (upper as f64 - lower) * fraction;
        }
        self.edges[self.edges.len() - 1] as f64
    }

    /// Rebuilds a histogram from exposed parts — the client-side inverse
    /// of the Prometheus rendering, used by `servectl top` to compute
    /// quantiles from a stats dump.
    ///
    /// Returns `None` when the edges are empty or not strictly
    /// ascending, or when `counts` is not one longer than `edges` (the
    /// trailing overflow bucket).
    #[must_use]
    pub fn from_parts(edges: &[u64], counts: &[u64], sum: u64) -> Option<Histogram> {
        if edges.is_empty() || counts.len() != edges.len() + 1 {
            return None;
        }
        if !edges.windows(2).all(|w| w[0] < w[1]) {
            return None;
        }
        let mut h = Histogram::with_edges(edges);
        h.counts.copy_from_slice(counts);
        h.total = counts.iter().sum();
        h.sum = sum;
        Some(h)
    }
}

/// One typed metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum Metric {
    /// Monotonically increasing event count; merge adds.
    Counter(u64),
    /// Instantaneous scalar; merge takes the maximum.
    Gauge(f64),
    /// Exact rational (hit rates, utilizations); merge adds componentwise.
    Ratio(Ratio),
    /// Achieved words-over-cycles rate; merge adds componentwise.
    Bandwidth(Bandwidth),
    /// Fixed-bucket histogram; merge adds bucket counts.
    Histogram(Histogram),
}

impl Metric {
    /// The metric's scalar value for display: counters and gauges as-is,
    /// ratios and bandwidths as their derived rate, histograms as their
    /// mean.
    #[must_use]
    pub fn value(&self) -> f64 {
        match self {
            Metric::Counter(c) => *c as f64,
            Metric::Gauge(g) => *g,
            Metric::Ratio(r) => r.value(),
            Metric::Bandwidth(b) => b.words_per_cycle(),
            Metric::Histogram(h) => h.mean(),
        }
    }

    /// Short type tag used in exposition formats.
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Ratio(_) => "ratio",
            Metric::Bandwidth(_) => "bandwidth",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// Errors from metrics operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricsError {
    /// Two histograms with different bucket edges cannot merge.
    BucketMismatch,
    /// Two metrics with the same name but different types cannot merge.
    TypeMismatch {
        /// The metric name that clashed.
        name: String,
    },
}

impl fmt::Display for MetricsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsError::BucketMismatch => {
                write!(f, "histogram bucket edges differ; cannot merge")
            }
            MetricsError::TypeMismatch { name } => {
                write!(f, "metric `{name}` has conflicting types; cannot merge")
            }
        }
    }
}

impl std::error::Error for MetricsError {}

/// A deterministic registry of named metrics.
///
/// Names are hierarchical dotted paths (`ppc.l2.hit_rate`); storage is a
/// [`BTreeMap`] so iteration, rendering, and merging are all
/// order-independent of insertion order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsReport {
    metrics: BTreeMap<String, Metric>,
}

impl MetricsReport {
    /// An empty report.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets (or replaces) a metric under `name`.
    pub fn set(&mut self, name: &str, metric: Metric) {
        self.metrics.insert(name.to_string(), metric);
    }

    /// Registers a counter with an absolute value.
    pub fn counter(&mut self, name: &str, value: u64) {
        self.set(name, Metric::Counter(value));
    }

    /// Adds to a counter, creating it at zero if absent.
    ///
    /// Silently ignores the delta if `name` exists with a non-counter type
    /// (merge surfaces such clashes as errors; incremental adds stay
    /// infallible for hot-path ergonomics).
    pub fn add_counter(&mut self, name: &str, delta: u64) {
        if let Metric::Counter(c) =
            self.metrics.entry(name.to_string()).or_insert(Metric::Counter(0))
        {
            *c += delta;
        }
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &str, value: f64) {
        self.set(name, Metric::Gauge(value));
    }

    /// Registers a ratio.
    pub fn ratio(&mut self, name: &str, num: u64, den: u64) {
        self.set(name, Metric::Ratio(Ratio::new(num, den)));
    }

    /// Registers a bandwidth.
    pub fn bandwidth(&mut self, name: &str, words: u64, cycles: u64) {
        self.set(name, Metric::Bandwidth(Bandwidth::new(words, cycles)));
    }

    /// Records an observation into a cycle histogram under `name`,
    /// creating it with the standard edges if absent.
    pub fn observe(&mut self, name: &str, value: u64) {
        if let Metric::Histogram(h) = self
            .metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Histogram::cycles()))
        {
            h.observe(value);
        }
    }

    /// Looks up a metric.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Metric> {
        self.metrics.get(name)
    }

    /// Convenience: the counter value under `name`, or `None` if absent
    /// or not a counter.
    #[must_use]
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        match self.metrics.get(name) {
            Some(Metric::Counter(c)) => Some(*c),
            _ => None,
        }
    }

    /// Iterates metrics in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Metric)> {
        self.metrics.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// Whether the report is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Sum of all counters whose name starts with `prefix`.
    #[must_use]
    pub fn counter_sum(&self, prefix: &str) -> u64 {
        self.metrics
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .filter_map(|(_, v)| match v {
                Metric::Counter(c) => Some(*c),
                _ => None,
            })
            .sum()
    }

    /// Merges another report into this one.
    ///
    /// Counters/ratios/bandwidths add componentwise, gauges keep the
    /// maximum, histograms add bucket counts.  Because every per-type
    /// merge is associative and commutative, merging a set of reports
    /// yields the same result in any order — the property that makes
    /// aggregate metrics independent of `--jobs`.
    ///
    /// # Errors
    ///
    /// Returns [`MetricsError::TypeMismatch`] when the same name holds
    /// different metric types, or [`MetricsError::BucketMismatch`] for
    /// incompatible histograms.
    pub fn merge(&mut self, other: &MetricsReport) -> Result<(), MetricsError> {
        for (name, theirs) in &other.metrics {
            match self.metrics.get_mut(name) {
                None => {
                    self.metrics.insert(name.clone(), theirs.clone());
                }
                Some(ours) => match (ours, theirs) {
                    (Metric::Counter(a), Metric::Counter(b)) => *a += b,
                    (Metric::Gauge(a), Metric::Gauge(b)) => {
                        if *b > *a {
                            *a = *b;
                        }
                    }
                    (Metric::Ratio(a), Metric::Ratio(b)) => {
                        a.num += b.num;
                        a.den += b.den;
                    }
                    (Metric::Bandwidth(a), Metric::Bandwidth(b)) => {
                        a.words += b.words;
                        a.cycles += b.cycles;
                    }
                    (Metric::Histogram(a), Metric::Histogram(b)) => a.merge(b)?,
                    _ => return Err(MetricsError::TypeMismatch { name: name.clone() }),
                },
            }
        }
        Ok(())
    }

    /// Renders the Prometheus text exposition format.
    ///
    /// Dots in metric names become underscores; ratios and bandwidths
    /// expand to integer `_num`/`_den` (resp. `_words`/`_cycles`) pairs
    /// plus the derived rate; histograms expand to cumulative
    /// `_bucket{le="…"}` series with `_sum` and `_count`.
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for (name, metric) in &self.metrics {
            let flat = promname(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {flat} counter\n{flat} {c}\n"));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {flat} gauge\n{flat} {}\n", fmt_f64(*g)));
                }
                Metric::Ratio(r) => {
                    out.push_str(&format!(
                        "# TYPE {flat} gauge\n{flat} {}\n{flat}_num {}\n{flat}_den {}\n",
                        fmt_f64(r.value()),
                        r.num,
                        r.den
                    ));
                }
                Metric::Bandwidth(b) => {
                    out.push_str(&format!(
                        "# TYPE {flat} gauge\n{flat} {}\n{flat}_words {}\n{flat}_cycles {}\n",
                        fmt_f64(b.words_per_cycle()),
                        b.words,
                        b.cycles
                    ));
                }
                Metric::Histogram(h) => {
                    out.push_str(&format!("# TYPE {flat} histogram\n"));
                    let mut cumulative = 0u64;
                    for (edge, count) in h.edges().iter().zip(h.counts().iter()) {
                        cumulative += count;
                        out.push_str(&format!("{flat}_bucket{{le=\"{edge}\"}} {cumulative}\n"));
                    }
                    out.push_str(&format!(
                        "{flat}_bucket{{le=\"+Inf\"}} {}\n{flat}_sum {}\n{flat}_count {}\n",
                        h.total(),
                        h.sum(),
                        h.total()
                    ));
                }
            }
        }
        out
    }

    /// Renders a schema-stable JSON object: `{"name": {"type": …, …}}`.
    #[must_use]
    pub fn render_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        for (name, metric) in &self.metrics {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str(&format!("\n  \"{}\": ", escape_json(name)));
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("{{\"type\": \"counter\", \"value\": {c}}}"));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("{{\"type\": \"gauge\", \"value\": {}}}", fmt_f64(*g)));
                }
                Metric::Ratio(r) => {
                    out.push_str(&format!(
                        "{{\"type\": \"ratio\", \"num\": {}, \"den\": {}, \"value\": {}}}",
                        r.num,
                        r.den,
                        fmt_f64(r.value())
                    ));
                }
                Metric::Bandwidth(b) => {
                    out.push_str(&format!(
                        "{{\"type\": \"bandwidth\", \"words\": {}, \"cycles\": {}, \
                         \"words_per_cycle\": {}}}",
                        b.words,
                        b.cycles,
                        fmt_f64(b.words_per_cycle())
                    ));
                }
                Metric::Histogram(h) => {
                    let edges: Vec<String> = h.edges().iter().map(u64::to_string).collect();
                    let counts: Vec<String> = h.counts().iter().map(u64::to_string).collect();
                    out.push_str(&format!(
                        "{{\"type\": \"histogram\", \"edges\": [{}], \"counts\": [{}], \
                         \"sum\": {}, \"count\": {}}}",
                        edges.join(", "),
                        counts.join(", "),
                        h.sum(),
                        h.total()
                    ));
                }
            }
        }
        out.push_str("\n}");
        out
    }
}

/// Formats an `f64` deterministically for exposition: integral values
/// without a fraction, otherwise the shortest round-trip representation.
#[must_use]
pub fn fmt_f64(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{v:.1}")
    } else {
        format!("{v}")
    }
}

/// Flattens a dotted hierarchical name into a Prometheus-legal one.
fn promname(name: &str) -> String {
    let mut flat: String =
        name.chars().map(|c| if c.is_ascii_alphanumeric() || c == '_' { c } else { '_' }).collect();
    if flat.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        flat.insert(0, '_');
    }
    format!("triarch_{flat}")
}

/// Escapes a string for inclusion in a JSON string literal.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// The shared hardware-counter set for one cache level: hits, misses,
/// capacity evictions, and dirty-line writebacks.
///
/// Cache models keep one of these per level and bump the plain `u64`
/// fields on their hot path (no map lookups); at run end,
/// [`CacheCounters::export`] registers the counters plus the derived
/// hit-rate ratio under a hierarchical prefix (`ppc.l1`, `ppc.l2`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheCounters {
    /// Accesses that found their line resident.
    pub hits: u64,
    /// Accesses that missed.
    pub misses: u64,
    /// Lines displaced by capacity/conflict replacement.
    pub evictions: u64,
    /// Evicted lines that were dirty and had to be written back.
    pub writebacks: u64,
}

impl CacheCounters {
    /// Total accesses observed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit rate as an exact [`Ratio`].
    #[must_use]
    pub fn hit_rate(&self) -> Ratio {
        Ratio::new(self.hits, self.accesses())
    }

    /// Registers `{prefix}.hits`, `{prefix}.misses`, `{prefix}.evictions`,
    /// `{prefix}.writebacks`, and the `{prefix}.hit_rate` ratio.
    pub fn export(&self, report: &mut MetricsReport, prefix: &str) {
        report.counter(&format!("{prefix}.hits"), self.hits);
        report.counter(&format!("{prefix}.misses"), self.misses);
        report.counter(&format!("{prefix}.evictions"), self.evictions);
        report.counter(&format!("{prefix}.writebacks"), self.writebacks);
        report.set(&format!("{prefix}.hit_rate"), Metric::Ratio(self.hit_rate()));
    }
}

/// A streaming observation sink for call sites that record as they go.
///
/// The default implementation for every method is a no-op, so
/// [`NullRegistry`] is literally empty and the optimiser removes the
/// calls — the same zero-cost pattern as `trace::NullSink` and
/// `faults::NoFaults`.
pub trait Recorder {
    /// Adds `delta` to the counter under `name`.
    fn add(&mut self, _name: &str, _delta: u64) {}
    /// Records a histogram observation under `name`.
    fn observe(&mut self, _name: &str, _value: u64) {}
}

/// The metrics-off recorder: every operation is a no-op.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullRegistry;

impl Recorder for NullRegistry {}

/// A recording registry that accumulates into a [`MetricsReport`].
#[derive(Debug, Clone, Default)]
pub struct Registry {
    report: MetricsReport,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Consumes the registry, yielding the accumulated report.
    #[must_use]
    pub fn into_report(self) -> MetricsReport {
        self.report
    }

    /// Borrows the accumulated report.
    #[must_use]
    pub fn report(&self) -> &MetricsReport {
        &self.report
    }
}

impl Recorder for Registry {
    fn add(&mut self, name: &str, delta: u64) {
        self.report.add_counter(name, delta);
    }

    fn observe(&mut self, name: &str, value: u64) {
        self.report.observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_and_bandwidth_derive() {
        assert!((Ratio::new(3, 4).value() - 0.75).abs() < 1e-12);
        assert_eq!(Ratio::new(0, 0).value(), 0.0);
        assert!((Bandwidth::new(16, 4).words_per_cycle() - 4.0).abs() < 1e-12);
        assert_eq!(Bandwidth::new(5, 0).words_per_cycle(), 0.0);
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let mut h = Histogram::with_edges(&[1, 2, 4]);
        h.observe(1); // bucket 0 (<=1)
        h.observe(2); // bucket 1
        h.observe(3); // bucket 2 (<=4)
        h.observe(100); // overflow
        assert_eq!(h.counts(), &[1, 1, 1, 1]);
        assert_eq!(h.total(), 4);
        assert_eq!(h.sum(), 106);

        let mut other = Histogram::with_edges(&[1, 2, 4]);
        other.observe(4);
        h.merge(&other).unwrap();
        assert_eq!(h.counts(), &[1, 1, 2, 1]);

        let bad = Histogram::with_edges(&[1, 2]);
        assert_eq!(h.merge(&bad), Err(MetricsError::BucketMismatch));
    }

    #[test]
    fn quantiles_interpolate_inside_the_owning_bucket() {
        assert_eq!(Histogram::cycles().quantile(0.5), 0.0, "empty histogram");

        let mut h = Histogram::with_edges(&[10, 20, 40]);
        for v in [5, 5, 15, 15, 30, 30, 30, 30] {
            h.observe(v);
        }
        // Rank 4 of 8 lands exactly on the (10, 20] bucket's upper edge.
        assert!((h.quantile(0.5) - 20.0).abs() < 1e-9, "{}", h.quantile(0.5));
        // Rank 2 exhausts the first bucket: its upper edge, interpolated
        // from lower bound 0.
        assert!((h.quantile(0.25) - 10.0).abs() < 1e-9);
        // Rank 6 is halfway through the (20, 40] bucket.
        assert!((h.quantile(0.75) - 30.0).abs() < 1e-9);
        assert_eq!(h.quantile(0.0), 0.0);
        assert!((h.quantile(1.0) - 40.0).abs() < 1e-9);

        // Overflow observations report the last edge: there is nothing
        // to interpolate toward.
        let mut h = Histogram::with_edges(&[10, 20]);
        h.observe(1000);
        assert_eq!(h.quantile(0.5), 20.0);
        // Out-of-range q is clamped, not propagated — and with every
        // observation in the overflow bucket even q=0 can only say
        // "above the last edge".
        assert_eq!(h.quantile(7.0), 20.0);
        assert_eq!(h.quantile(-1.0), 20.0);
    }

    #[test]
    fn from_parts_round_trips_the_exposition() {
        let mut h = Histogram::with_edges(&[1, 2, 4]);
        for v in [1, 3, 3, 9] {
            h.observe(v);
        }
        let rebuilt = Histogram::from_parts(h.edges(), h.counts(), h.sum()).unwrap();
        assert_eq!(rebuilt, h);
        assert_eq!(rebuilt.quantile(0.5), h.quantile(0.5));

        assert!(Histogram::from_parts(&[], &[0], 0).is_none(), "empty edges");
        assert!(Histogram::from_parts(&[1, 2], &[0, 0], 0).is_none(), "missing overflow bucket");
        assert!(Histogram::from_parts(&[2, 1], &[0, 0, 0], 0).is_none(), "unsorted edges");
    }

    #[test]
    fn report_merge_is_typed() {
        let mut a = MetricsReport::new();
        a.counter("x.events", 3);
        a.ratio("x.rate", 1, 2);
        a.gauge("x.peak", 5.0);
        a.bandwidth("x.bw", 10, 5);

        let mut b = MetricsReport::new();
        b.counter("x.events", 4);
        b.ratio("x.rate", 1, 2);
        b.gauge("x.peak", 3.0);
        b.bandwidth("x.bw", 10, 15);
        b.counter("y.only", 1);

        a.merge(&b).unwrap();
        assert_eq!(a.counter_value("x.events"), Some(7));
        assert_eq!(a.get("x.rate"), Some(&Metric::Ratio(Ratio::new(2, 4))));
        assert_eq!(a.get("x.peak"), Some(&Metric::Gauge(5.0)));
        assert_eq!(a.get("x.bw"), Some(&Metric::Bandwidth(Bandwidth::new(20, 20))));
        assert_eq!(a.counter_value("y.only"), Some(1));

        let mut clash = MetricsReport::new();
        clash.gauge("x.events", 1.0);
        assert!(matches!(a.merge(&clash), Err(MetricsError::TypeMismatch { .. })));
    }

    #[test]
    fn counter_sum_by_prefix() {
        let mut r = MetricsReport::new();
        r.add_counter("viram.cycles.memory", 10);
        r.add_counter("viram.cycles.compute", 5);
        r.add_counter("viram.dram.row_misses", 99);
        assert_eq!(r.counter_sum("viram.cycles."), 15);
    }

    #[test]
    fn prometheus_exposition_shape() {
        let mut r = MetricsReport::new();
        r.counter("a.count", 2);
        r.ratio("a.rate", 1, 4);
        let text = r.render_prometheus();
        assert!(text.contains("# TYPE triarch_a_count counter\ntriarch_a_count 2\n"));
        assert!(text.contains("triarch_a_rate 0.25\n"));
        assert!(text.contains("triarch_a_rate_num 1\n"));
        assert!(text.contains("triarch_a_rate_den 4\n"));
    }

    #[test]
    fn json_exposition_parses_shape() {
        let mut r = MetricsReport::new();
        r.counter("a", 1);
        r.observe("h", 3);
        let json = r.render_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"a\": {\"type\": \"counter\", \"value\": 1}"));
        assert!(json.contains("\"type\": \"histogram\""));
    }

    #[test]
    fn recorder_null_and_registry() {
        let mut null = NullRegistry;
        null.add("ignored", 1);
        null.observe("ignored", 1);

        let mut reg = Registry::new();
        reg.add("x", 2);
        reg.add("x", 3);
        reg.observe("h", 7);
        let report = reg.into_report();
        assert_eq!(report.counter_value("x"), Some(5));
        assert!(matches!(report.get("h"), Some(Metric::Histogram(_))));
    }

    #[test]
    fn cache_counters_export_shape() {
        let c = CacheCounters { hits: 6, misses: 2, evictions: 1, writebacks: 1 };
        assert_eq!(c.accesses(), 8);
        assert_eq!(c.hit_rate(), Ratio::new(6, 8));
        let mut r = MetricsReport::new();
        c.export(&mut r, "ppc.l1");
        assert_eq!(r.counter_value("ppc.l1.hits"), Some(6));
        assert_eq!(r.counter_value("ppc.l1.misses"), Some(2));
        assert_eq!(r.counter_value("ppc.l1.evictions"), Some(1));
        assert_eq!(r.counter_value("ppc.l1.writebacks"), Some(1));
        assert_eq!(r.get("ppc.l1.hit_rate"), Some(&Metric::Ratio(Ratio::new(6, 8))));
    }

    #[test]
    fn fmt_f64_stable() {
        assert_eq!(fmt_f64(2.0), "2.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(0.0), "0.0");
    }
}
