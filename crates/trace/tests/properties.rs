//! Property-based tests: trace aggregation must be lossless.

use proptest::prelude::*;
use triarch_trace::{aggregate, AggregateSink, RingSink, TeeSink, TraceEvent, TraceSink};

/// Category label table used to build arbitrary events from indices
/// (event labels are `&'static str` by design).
const CATEGORIES: [&str; 4] = ["memory", "issue", "precharge", "stall"];
const TRACKS: [&str; 3] = ["m.mem", "m.core", "m.net"];

/// Decodes a generated tuple into a span event.
fn span_of((t, c, start, dur, counted): (usize, usize, u64, u64, bool)) -> TraceEvent {
    TraceEvent::Span {
        track: TRACKS[t % TRACKS.len()],
        category: CATEGORIES[c % CATEGORIES.len()],
        name: "n",
        start,
        dur,
        counted,
    }
}

proptest! {
    /// Aggregation is lossless: the total equals the sum of counted span
    /// durations, and each category total equals its own counted sum.
    #[test]
    fn aggregation_is_lossless(
        raw in proptest::collection::vec(
            (0usize..3, 0usize..4, 0u64..1_000_000, 0u64..10_000, any::<bool>()),
            0..200,
        )
    ) {
        let events: Vec<TraceEvent> = raw.iter().copied().map(span_of).collect();
        let agg = aggregate(&events);
        let counted_sum: u64 = events
            .iter()
            .filter_map(|e| match *e {
                TraceEvent::Span { dur, counted: true, .. } => Some(dur),
                _ => None,
            })
            .sum();
        prop_assert_eq!(agg.total(), counted_sum);
        for category in CATEGORIES {
            let per_cat: u64 = events
                .iter()
                .filter_map(|e| match *e {
                    TraceEvent::Span { category: c, dur, counted: true, .. }
                        if c == category => Some(dur),
                    _ => None,
                })
                .sum();
            prop_assert_eq!(agg.get(category), per_cat);
        }
    }

    /// Aggregation is order-independent: any rotation of the event stream
    /// produces the same per-category totals.
    #[test]
    fn aggregation_is_order_independent(
        raw in proptest::collection::vec(
            (0usize..3, 0usize..4, 0u64..1_000_000, 0u64..10_000, any::<bool>()),
            1..100,
        ),
        rot in 0usize..100,
    ) {
        let events: Vec<TraceEvent> = raw.iter().copied().map(span_of).collect();
        let mut rotated = events.clone();
        rotated.rotate_left(rot % events.len());
        let a = aggregate(&events);
        let b = aggregate(&rotated);
        prop_assert_eq!(a.total(), b.total());
        for category in CATEGORIES {
            prop_assert_eq!(a.get(category), b.get(category));
        }
    }

    /// The streaming aggregator sees exactly what the batch aggregator
    /// sees, and a tee delivers every event to both arms: retained ring
    /// events plus dropped count account for the full stream.
    #[test]
    fn streaming_tee_and_ring_account_for_every_event(
        raw in proptest::collection::vec(
            (0usize..3, 0usize..4, 0u64..1_000_000, 1u64..10_000, any::<bool>()),
            0..150,
        ),
        capacity in 1usize..64,
    ) {
        let mut tee = TeeSink::new(RingSink::new(capacity), AggregateSink::new());
        for &tuple in &raw {
            tee.record(span_of(tuple));
        }
        let TeeSink { a: ring, b: agg } = tee;
        prop_assert_eq!(ring.len() as u64 + ring.dropped(), raw.len() as u64);
        let streaming = agg.into_breakdown();
        let events: Vec<TraceEvent> = raw.iter().copied().map(span_of).collect();
        let batch = aggregate(&events);
        prop_assert_eq!(streaming, batch);
    }
}
