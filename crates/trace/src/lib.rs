//! # triarch-trace
//!
//! Cycle-attribution event tracing for the triarch simulators.
//!
//! The paper this repository reproduces argues through *attribution*: §4.2
//! explains VIRAM's corner turn via precharge/TLB overhead and the
//! address-generator limit, Imagine's via ~87% memory time, Raw's via issue
//! occupancy; §4.3–4.4 do the same for CSLC and beam steering. The
//! simulators report those attributions as [`CycleBreakdown`]-style tallies
//! maintained by hand inside each engine. This crate provides the
//! *independent* evidence stream: engines emit cycle-stamped events into a
//! [`TraceSink`], and an [`aggregate`] pass folds the event stream back into
//! per-category totals that must reproduce each machine's reported
//! breakdown. Tallies become checkable artifacts instead of trusted
//! constants.
//!
//! [`CycleBreakdown`]: https://docs.rs/triarch-simcore
//!
//! ## Design
//!
//! * **Events** ([`TraceEvent`]) are `Copy` and built entirely from
//!   `&'static str` labels plus integer cycle stamps — recording an event is
//!   a few stores, no allocation.
//! * **Sinks** ([`TraceSink`]) are the recording interface. The trait is
//!   dyn-safe so machines can accept `&mut dyn TraceSink`, but engines are
//!   *generic* over a sink type defaulting to [`NullSink`], whose methods are
//!   empty and whose [`TraceSink::is_enabled`] returns `false` — with the
//!   default sink the instrumentation compiles to nothing on the hot path.
//! * **Counted vs. uncounted spans.** Spans marked `counted` partition the
//!   machine's total cycle count: summing their durations per category must
//!   equal the engine's breakdown exactly. Uncounted spans carry extra
//!   detail — work hidden under an overlap region, or the DRAM model's
//!   decomposition of a transfer it already charged — and are excluded from
//!   aggregation so nothing is double counted.
//! * **Exporters** are hand-rolled (no serde, per the workspace dependency
//!   policy): [`export::chrome_trace_json`] emits Chrome `trace_event` JSON
//!   loadable in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev),
//!   and [`export::csv`] emits a flat table.
//!
//! ## Quick example
//!
//! ```
//! use triarch_trace::{aggregate, RingSink, TraceSink};
//!
//! let mut sink = RingSink::new(1024);
//! sink.span("viram.mem", "memory", "vld.strided", 0, 120);
//! sink.span("viram.mem", "precharge", "row-overhead", 120, 30);
//! sink.span_uncounted("viram.detail", "memory", "dram-data", 0, 100);
//! let agg = aggregate(sink.events());
//! assert_eq!(agg.get("memory"), 120); // uncounted detail not double counted
//! assert_eq!(agg.get("precharge"), 30);
//! assert_eq!(agg.total(), 150);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod agg;
mod event;
pub mod export;
mod ring;
mod sink;

pub use agg::{aggregate, AggregateSink, TraceBreakdown};
pub use event::TraceEvent;
pub use ring::RingSink;
pub use sink::{NullSink, TeeSink, TraceSink};
