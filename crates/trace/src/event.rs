//! The event vocabulary shared by every simulator.

/// One cycle-stamped observation from a simulator.
///
/// All labels are `&'static str` so events are `Copy` and recording never
/// allocates. Cycle stamps are in the *machine's own* clock domain (the same
/// domain as its reported `KernelRun::cycles`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A duration attributed to a breakdown category.
    Span {
        /// Execution track (Chrome-trace thread), e.g. `"viram.mem"`.
        track: &'static str,
        /// Breakdown category this span charges, e.g. `"memory"`,
        /// `"precharge"`, `"issue"`.
        category: &'static str,
        /// Human-readable label, e.g. `"vld.strided"`, `"srf-stream-in"`.
        name: &'static str,
        /// Start cycle (inclusive).
        start: u64,
        /// Duration in cycles.
        dur: u64,
        /// Whether this span participates in the cycle partition.
        ///
        /// Counted spans must tile the machine's total cycle count:
        /// per-category sums of counted spans reproduce the engine's
        /// `CycleBreakdown`. Uncounted spans are visualization-only detail
        /// (overlap-hidden work, DRAM transfer decomposition) and are
        /// skipped by [`crate::aggregate`].
        counted: bool,
    },
    /// A zero-duration marker, e.g. a phase boundary or TLB miss.
    Instant {
        /// Execution track.
        track: &'static str,
        /// Marker label.
        name: &'static str,
        /// Cycle at which it occurred.
        at: u64,
    },
    /// A sampled numeric series, e.g. cumulative DRAM row misses.
    Counter {
        /// Execution track.
        track: &'static str,
        /// Series name.
        name: &'static str,
        /// Cycle of the sample.
        at: u64,
        /// Sampled value.
        value: f64,
    },
}

impl TraceEvent {
    /// The event's track label.
    #[must_use]
    pub fn track(&self) -> &'static str {
        match self {
            TraceEvent::Span { track, .. }
            | TraceEvent::Instant { track, .. }
            | TraceEvent::Counter { track, .. } => track,
        }
    }

    /// The cycle at which the event starts (or occurs).
    #[must_use]
    pub fn start(&self) -> u64 {
        match self {
            TraceEvent::Span { start, .. } => *start,
            TraceEvent::Instant { at, .. } | TraceEvent::Counter { at, .. } => *at,
        }
    }

    /// The cycle at which the event ends (`start` for points).
    #[must_use]
    pub fn end(&self) -> u64 {
        match self {
            TraceEvent::Span { start, dur, .. } => start.saturating_add(*dur),
            TraceEvent::Instant { at, .. } | TraceEvent::Counter { at, .. } => *at,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_cover_all_variants() {
        let s = TraceEvent::Span {
            track: "t",
            category: "memory",
            name: "n",
            start: 10,
            dur: 5,
            counted: true,
        };
        assert_eq!(s.track(), "t");
        assert_eq!(s.start(), 10);
        assert_eq!(s.end(), 15);

        let i = TraceEvent::Instant { track: "t2", name: "mark", at: 7 };
        assert_eq!(i.track(), "t2");
        assert_eq!(i.start(), 7);
        assert_eq!(i.end(), 7);

        let c = TraceEvent::Counter { track: "t3", name: "rows", at: 3, value: 1.5 };
        assert_eq!(c.track(), "t3");
        assert_eq!((c.start(), c.end()), (3, 3));
    }

    #[test]
    fn span_end_saturates() {
        let s = TraceEvent::Span {
            track: "t",
            category: "c",
            name: "n",
            start: u64::MAX - 1,
            dur: 10,
            counted: false,
        };
        assert_eq!(s.end(), u64::MAX);
    }
}
