//! The recording interface and its zero-cost / combinator implementations.

use crate::event::TraceEvent;

/// Receives cycle-stamped events from a simulator.
///
/// The trait is dyn-safe (`&mut dyn TraceSink` works), while engines remain
/// generic over a concrete sink type defaulting to [`NullSink`] so that a
/// disabled trace compiles to nothing.
///
/// Implementors override [`record`](Self::record) (and
/// [`is_enabled`](Self::is_enabled) where recording can be skipped
/// entirely); the span/instant/counter helpers are provided.
pub trait TraceSink {
    /// Records one event.
    fn record(&mut self, event: TraceEvent);

    /// Whether events will be observed at all.
    ///
    /// Engines consult this before doing any work that exists only to build
    /// events (e.g. re-deriving a DRAM cost decomposition), so a disabled
    /// sink keeps the hot path untouched.
    fn is_enabled(&self) -> bool {
        true
    }

    /// Records a counted span: `dur` cycles starting at `start`, charged to
    /// `category`. See [`TraceEvent::Span`] for the counted contract.
    fn span(
        &mut self,
        track: &'static str,
        category: &'static str,
        name: &'static str,
        start: u64,
        dur: u64,
    ) {
        if dur > 0 {
            self.record(TraceEvent::Span { track, category, name, start, dur, counted: true });
        }
    }

    /// Records an uncounted (visualization-only) span.
    fn span_uncounted(
        &mut self,
        track: &'static str,
        category: &'static str,
        name: &'static str,
        start: u64,
        dur: u64,
    ) {
        if dur > 0 {
            self.record(TraceEvent::Span { track, category, name, start, dur, counted: false });
        }
    }

    /// Records an instant marker.
    fn instant(&mut self, track: &'static str, name: &'static str, at: u64) {
        self.record(TraceEvent::Instant { track, name, at });
    }

    /// Records a counter sample.
    fn counter(&mut self, track: &'static str, name: &'static str, at: u64, value: f64) {
        self.record(TraceEvent::Counter { track, name, at, value });
    }
}

impl<T: TraceSink + ?Sized> TraceSink for &mut T {
    fn record(&mut self, event: TraceEvent) {
        (**self).record(event);
    }

    fn is_enabled(&self) -> bool {
        (**self).is_enabled()
    }
}

/// The do-nothing sink: every method is empty and
/// [`is_enabled`](TraceSink::is_enabled) is `false`, so engines
/// parameterized by `NullSink` (the default) optimize all instrumentation
/// away.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    #[inline(always)]
    fn record(&mut self, _event: TraceEvent) {}

    #[inline(always)]
    fn is_enabled(&self) -> bool {
        false
    }
}

/// Forwards every event to two sinks, e.g. a bounded [`crate::RingSink`]
/// for export plus an [`crate::AggregateSink`] for validation.
#[derive(Debug, Clone, Default)]
pub struct TeeSink<A, B> {
    /// First receiver.
    pub a: A,
    /// Second receiver.
    pub b: B,
}

impl<A: TraceSink, B: TraceSink> TeeSink<A, B> {
    /// Builds a tee over two sinks.
    pub fn new(a: A, b: B) -> Self {
        TeeSink { a, b }
    }
}

impl<A: TraceSink, B: TraceSink> TraceSink for TeeSink<A, B> {
    fn record(&mut self, event: TraceEvent) {
        self.a.record(event);
        self.b.record(event);
    }

    fn is_enabled(&self) -> bool {
        self.a.is_enabled() || self.b.is_enabled()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RingSink;

    #[test]
    fn null_sink_is_disabled_and_silent() {
        let mut s = NullSink;
        assert!(!s.is_enabled());
        s.span("t", "c", "n", 0, 10);
        s.instant("t", "n", 0);
        s.counter("t", "n", 0, 1.0);
        // Nothing observable; this test exists to exercise the paths.
    }

    #[test]
    fn zero_duration_spans_are_elided() {
        let mut s = RingSink::new(8);
        s.span("t", "c", "n", 5, 0);
        s.span_uncounted("t", "c", "n", 5, 0);
        assert_eq!(s.len(), 0);
        s.span("t", "c", "n", 5, 1);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut inner = RingSink::new(8);
        {
            let mut as_ref: &mut RingSink = &mut inner;
            as_ref.span("t", "c", "n", 0, 3);
            let dyn_sink: &mut dyn TraceSink = &mut as_ref;
            dyn_sink.span("t", "c", "n", 3, 4);
            assert!(dyn_sink.is_enabled());
        }
        assert_eq!(inner.len(), 2);
    }

    #[test]
    fn tee_feeds_both() {
        let mut tee = TeeSink::new(RingSink::new(4), RingSink::new(4));
        assert!(tee.is_enabled());
        tee.span("t", "c", "n", 0, 2);
        assert_eq!(tee.a.len(), 1);
        assert_eq!(tee.b.len(), 1);
        let quiet = TeeSink::new(NullSink, NullSink);
        assert!(!quiet.is_enabled());
    }
}
