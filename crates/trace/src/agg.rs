//! Folding an event stream back into per-category cycle totals.

use std::collections::BTreeMap;
use std::fmt;

use crate::event::TraceEvent;
use crate::sink::TraceSink;

/// Per-category cycle totals recovered from a trace.
///
/// Only *counted* spans contribute (see [`TraceEvent::Span`]); the result is
/// directly comparable to a machine's reported `CycleBreakdown`.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceBreakdown {
    totals: BTreeMap<&'static str, u64>,
    events: u64,
    last_cycle: u64,
}

impl TraceBreakdown {
    /// An empty breakdown.
    #[must_use]
    pub fn new() -> Self {
        TraceBreakdown::default()
    }

    /// Folds one event in.
    pub fn observe(&mut self, event: &TraceEvent) {
        self.events += 1;
        self.last_cycle = self.last_cycle.max(event.end());
        if let TraceEvent::Span { category, dur, counted: true, .. } = event {
            *self.totals.entry(category).or_insert(0) += dur;
        }
    }

    /// Total counted cycles in `category` (0 when absent).
    #[must_use]
    pub fn get(&self, category: &str) -> u64 {
        self.totals.get(category).copied().unwrap_or(0)
    }

    /// Sum of counted cycles across all categories.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.totals.values().sum()
    }

    /// Fraction of the total in `category` (0 when the total is 0).
    #[must_use]
    pub fn fraction(&self, category: &str) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            self.get(category) as f64 / total as f64
        }
    }

    /// Iterates categories and totals in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&'static str, u64)> + '_ {
        self.totals.iter().map(|(&k, &v)| (k, v))
    }

    /// Number of distinct categories seen.
    #[must_use]
    pub fn len(&self) -> usize {
        self.totals.len()
    }

    /// Whether no counted cycles were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.totals.is_empty()
    }

    /// Number of events folded in (all kinds, counted or not).
    #[must_use]
    pub fn events_observed(&self) -> u64 {
        self.events
    }

    /// Largest end-cycle seen across all events.
    #[must_use]
    pub fn last_cycle(&self) -> u64 {
        self.last_cycle
    }
}

impl fmt::Display for TraceBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.total();
        let mut first = true;
        for (cat, cycles) in self.iter() {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            let pct = if total == 0 { 0.0 } else { 100.0 * cycles as f64 / total as f64 };
            write!(f, "{cat}: {cycles} ({pct:.1}%)")?;
        }
        if first {
            write!(f, "(empty)")?;
        }
        Ok(())
    }
}

/// Aggregates counted spans from a borrowed event stream.
pub fn aggregate<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> TraceBreakdown {
    let mut breakdown = TraceBreakdown::new();
    for event in events {
        breakdown.observe(event);
    }
    breakdown
}

/// A sink that folds events into a [`TraceBreakdown`] as they arrive,
/// giving exact aggregation in O(categories) memory — paper-scale traces
/// need never be stored to be validated.
#[derive(Debug, Clone, Default)]
pub struct AggregateSink {
    breakdown: TraceBreakdown,
}

impl AggregateSink {
    /// An empty aggregator.
    #[must_use]
    pub fn new() -> Self {
        AggregateSink::default()
    }

    /// The totals accumulated so far.
    #[must_use]
    pub fn breakdown(&self) -> &TraceBreakdown {
        &self.breakdown
    }

    /// Consumes the sink, returning the totals.
    #[must_use]
    pub fn into_breakdown(self) -> TraceBreakdown {
        self.breakdown
    }
}

impl TraceSink for AggregateSink {
    fn record(&mut self, event: TraceEvent) {
        self.breakdown.observe(&event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn span(category: &'static str, start: u64, dur: u64, counted: bool) -> TraceEvent {
        TraceEvent::Span { track: "t", category, name: "n", start, dur, counted }
    }

    #[test]
    fn only_counted_spans_contribute() {
        let events = [
            span("memory", 0, 100, true),
            span("memory", 100, 40, true),
            span("memory", 0, 90, false),
            span("compute", 140, 60, true),
            TraceEvent::Instant { track: "t", name: "mark", at: 200 },
            TraceEvent::Counter { track: "t", name: "rows", at: 210, value: 4.0 },
        ];
        let agg = aggregate(&events);
        assert_eq!(agg.get("memory"), 140);
        assert_eq!(agg.get("compute"), 60);
        assert_eq!(agg.get("absent"), 0);
        assert_eq!(agg.total(), 200);
        assert!((agg.fraction("memory") - 0.7).abs() < 1e-12);
        assert_eq!(agg.events_observed(), 6);
        assert_eq!(agg.last_cycle(), 210);
        assert_eq!(agg.len(), 2);
        assert!(!agg.is_empty());
    }

    #[test]
    fn aggregate_sink_matches_batch_aggregation() {
        let events = [span("a", 0, 5, true), span("b", 5, 7, true), span("a", 12, 3, false)];
        let mut sink = AggregateSink::new();
        for e in &events {
            sink.record(*e);
        }
        assert_eq!(sink.breakdown(), &aggregate(&events));
        assert_eq!(sink.into_breakdown().total(), 12);
    }

    #[test]
    fn display_lists_percentages() {
        let agg = aggregate(&[span("mem", 0, 75, true), span("alu", 75, 25, true)]);
        let s = agg.to_string();
        assert!(s.contains("mem: 75 (75.0%)"), "{s}");
        assert!(s.contains("alu: 25 (25.0%)"), "{s}");
        assert_eq!(TraceBreakdown::new().to_string(), "(empty)");
    }

    #[test]
    fn empty_fraction_is_zero() {
        assert_eq!(TraceBreakdown::new().fraction("x"), 0.0);
    }
}
