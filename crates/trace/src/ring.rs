//! Bounded in-memory event recorder.

use std::collections::VecDeque;

use crate::event::TraceEvent;
use crate::sink::TraceSink;

/// A bounded ring-buffer recorder: keeps the most recent `capacity` events,
/// counting (rather than storing) anything older.
///
/// Paper-scale kernels emit hundreds of thousands of events; the ring bounds
/// memory for export while [`crate::AggregateSink`] handles unbounded exact
/// aggregation separately.
#[derive(Debug, Clone)]
pub struct RingSink {
    buf: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl RingSink {
    /// Creates a recorder keeping at most `capacity` events (min 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingSink { buf: VecDeque::with_capacity(capacity), capacity, dropped: 0 }
    }

    /// Number of retained events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether no events are retained.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Number of events evicted because the ring was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Consumes the recorder, returning retained events oldest first.
    #[must_use]
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.buf.into_iter().collect()
    }

    /// Discards all retained events and the drop count.
    pub fn clear(&mut self) {
        self.buf.clear();
        self.dropped = 0;
    }
}

impl TraceSink for RingSink {
    fn record(&mut self, event: TraceEvent) {
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_most_recent_events() {
        let mut s = RingSink::new(3);
        for i in 0..5u64 {
            s.instant("t", "mark", i);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.dropped(), 2);
        let starts: Vec<u64> = s.events().map(TraceEvent::start).collect();
        assert_eq!(starts, [2, 3, 4]);
        assert_eq!(s.clone().into_events().len(), 3);
    }

    #[test]
    fn clear_resets_everything() {
        let mut s = RingSink::new(2);
        s.instant("t", "a", 0);
        s.instant("t", "b", 1);
        s.instant("t", "c", 2);
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.dropped(), 0);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let mut s = RingSink::new(0);
        s.instant("t", "a", 0);
        s.instant("t", "b", 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.dropped(), 1);
    }
}
