//! Hand-rolled exporters: Chrome `trace_event` JSON and CSV.
//!
//! The workspace's dependency policy forbids serde; the JSON writer below
//! emits exactly the subset of the [Chrome trace-event format] the viewers
//! need — complete (`"X"`) spans, instants (`"i"`), counters (`"C"`) and
//! thread-name metadata (`"M"`) — with manual string escaping. Cycle stamps
//! are written as microsecond ticks (1 cycle = 1 µs), so viewer timelines
//! read directly in cycles.
//!
//! [Chrome trace-event format]: https://docs.google.com/document/d/1CvAClvFfyA5R-PhYUmn5OOQtYMH4h6I0nSsKchNAySU

use std::fmt::Write as _;

use crate::event::TraceEvent;

/// Escapes a string for inclusion in a JSON string literal.
fn push_json_escaped(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Stable first-seen ordering of track names -> Chrome `tid`s.
fn track_table<'a>(events: impl IntoIterator<Item = &'a TraceEvent>) -> Vec<&'static str> {
    let mut tracks: Vec<&'static str> = Vec::new();
    for event in events {
        let track = event.track();
        if !tracks.contains(&track) {
            tracks.push(track);
        }
    }
    tracks
}

fn tid_of(tracks: &[&'static str], track: &'static str) -> usize {
    tracks.iter().position(|&t| t == track).unwrap_or(0)
}

/// Renders events as a Chrome `trace_event` JSON array, loadable in
/// `chrome://tracing` or <https://ui.perfetto.dev>.
///
/// Each distinct track becomes a named thread (via `"M"` metadata); counted
/// spans carry `"args":{"counted":true}` so the two kinds are
/// distinguishable in the viewer.
#[must_use]
pub fn chrome_trace_json(events: &[TraceEvent]) -> String {
    let tracks = track_table(events);
    // ~96 bytes per event line is a good preallocation for this format.
    let mut out = String::with_capacity(64 + 96 * (events.len() + tracks.len()));
    out.push_str("[\n");
    let mut first = true;
    let emit = |out: &mut String, first: &mut bool| {
        if !*first {
            out.push_str(",\n");
        }
        *first = false;
    };

    for (tid, track) in tracks.iter().enumerate() {
        emit(&mut out, &mut first);
        out.push_str("{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":0,\"tid\":");
        let _ = write!(out, "{tid}");
        out.push_str(",\"args\":{\"name\":\"");
        push_json_escaped(&mut out, track);
        out.push_str("\"}}");
    }

    for event in events {
        emit(&mut out, &mut first);
        let tid = tid_of(&tracks, event.track());
        match *event {
            TraceEvent::Span { category, name, start, dur, counted, .. } => {
                out.push_str("{\"ph\":\"X\",\"name\":\"");
                push_json_escaped(&mut out, name);
                out.push_str("\",\"cat\":\"");
                push_json_escaped(&mut out, category);
                let _ = write!(
                    out,
                    "\",\"pid\":0,\"tid\":{tid},\"ts\":{start},\"dur\":{dur},\
                     \"args\":{{\"counted\":{counted}}}}}"
                );
            }
            TraceEvent::Instant { name, at, .. } => {
                out.push_str("{\"ph\":\"i\",\"name\":\"");
                push_json_escaped(&mut out, name);
                let _ = write!(out, "\",\"pid\":0,\"tid\":{tid},\"ts\":{at},\"s\":\"t\"}}");
            }
            TraceEvent::Counter { name, at, value, .. } => {
                out.push_str("{\"ph\":\"C\",\"name\":\"");
                push_json_escaped(&mut out, name);
                let _ = write!(out, "\",\"pid\":0,\"tid\":{tid},\"ts\":{at},\"args\":{{\"");
                push_json_escaped(&mut out, name);
                let _ = write!(out, "\":{value}}}}}");
            }
        }
    }
    out.push_str("\n]\n");
    out
}

/// Escapes a CSV field (quotes it when it contains a comma, quote, or
/// newline).
fn push_csv_escaped(out: &mut String, s: &str) {
    if s.contains([',', '"', '\n', '\r']) {
        out.push('"');
        for c in s.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(s);
    }
}

/// Renders events as a flat CSV table with header
/// `kind,track,category,name,start,dur,counted,value`.
///
/// Point events leave `dur`/`counted` or `value` empty as appropriate.
#[must_use]
pub fn csv(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(48 + 48 * events.len());
    out.push_str("kind,track,category,name,start,dur,counted,value\n");
    for event in events {
        match *event {
            TraceEvent::Span { track, category, name, start, dur, counted } => {
                out.push_str("span,");
                push_csv_escaped(&mut out, track);
                out.push(',');
                push_csv_escaped(&mut out, category);
                out.push(',');
                push_csv_escaped(&mut out, name);
                let _ = write!(out, ",{start},{dur},{counted},");
            }
            TraceEvent::Instant { track, name, at } => {
                out.push_str("instant,");
                push_csv_escaped(&mut out, track);
                out.push_str(",,");
                push_csv_escaped(&mut out, name);
                let _ = write!(out, ",{at},,,");
            }
            TraceEvent::Counter { track, name, at, value } => {
                out.push_str("counter,");
                push_csv_escaped(&mut out, track);
                out.push_str(",,");
                push_csv_escaped(&mut out, name);
                let _ = write!(out, ",{at},,,{value}");
            }
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Span {
                track: "viram.mem",
                category: "memory",
                name: "vld.strided",
                start: 0,
                dur: 120,
                counted: true,
            },
            TraceEvent::Span {
                track: "viram.detail",
                category: "memory",
                name: "dram-data",
                start: 0,
                dur: 100,
                counted: false,
            },
            TraceEvent::Instant { track: "viram.mem", name: "tlb-miss", at: 64 },
            TraceEvent::Counter { track: "viram.mem", name: "row-misses", at: 120, value: 3.0 },
        ]
    }

    #[test]
    fn chrome_json_shape() {
        let json = chrome_trace_json(&sample());
        assert!(json.starts_with("[\n"));
        assert!(json.trim_end().ends_with(']'));
        // Two tracks -> two metadata records with distinct tids.
        assert_eq!(json.matches("\"ph\":\"M\"").count(), 2);
        assert!(json.contains("\"args\":{\"name\":\"viram.mem\"}"));
        assert!(json.contains("\"args\":{\"name\":\"viram.detail\"}"));
        assert!(json.contains(
            "{\"ph\":\"X\",\"name\":\"vld.strided\",\"cat\":\"memory\",\"pid\":0,\"tid\":0,\
             \"ts\":0,\"dur\":120,\"args\":{\"counted\":true}}"
        ));
        assert!(json.contains("\"counted\":false"));
        assert!(json.contains("{\"ph\":\"i\",\"name\":\"tlb-miss\""));
        assert!(json.contains("{\"ph\":\"C\",\"name\":\"row-misses\""));
        assert!(json.contains("\"args\":{\"row-misses\":3}"));
    }

    #[test]
    fn chrome_json_is_structurally_valid() {
        // A tiny structural check without a JSON parser: balanced braces,
        // no trailing comma before the closing bracket, comma-separated
        // one-object lines.
        let json = chrome_trace_json(&sample());
        let opens = json.matches('{').count();
        let closes = json.matches('}').count();
        assert_eq!(opens, closes);
        assert!(!json.contains(",\n]"));
        let body: Vec<&str> = json.lines().filter(|l| l.starts_with('{')).collect();
        assert_eq!(body.len(), 2 + sample().len());
        for line in &body[..body.len() - 1] {
            assert!(line.ends_with("},") || line.ends_with('}'), "{line}");
        }
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut s = String::new();
        push_json_escaped(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "a\\\"b\\\\c\\nd\\u0001");
    }

    #[test]
    fn csv_shape_and_escaping() {
        let csv = csv(&sample());
        let mut lines = csv.lines();
        assert_eq!(lines.next(), Some("kind,track,category,name,start,dur,counted,value"));
        assert_eq!(lines.next(), Some("span,viram.mem,memory,vld.strided,0,120,true,"));
        assert_eq!(lines.next(), Some("span,viram.detail,memory,dram-data,0,100,false,"));
        assert_eq!(lines.next(), Some("instant,viram.mem,,tlb-miss,64,,,"));
        assert_eq!(lines.next(), Some("counter,viram.mem,,row-misses,120,,,3"));
        assert_eq!(lines.next(), None);

        let mut field = String::new();
        push_csv_escaped(&mut field, "a,b\"c");
        assert_eq!(field, "\"a,b\"\"c\"");
    }
}
