//! Property-based tests for the FFT substrate.

use proptest::prelude::*;
use triarch_fft::{dft_naive, fft_radix2, fft_radix4, ifft_radix2, Cf32, Fft};

fn arb_signal(max_log2: u32) -> impl Strategy<Value = Vec<Cf32>> {
    (1u32..=max_log2).prop_flat_map(|bits| {
        let n = 1usize << bits;
        proptest::collection::vec(
            (-100.0f32..100.0, -100.0f32..100.0).prop_map(|(re, im)| Cf32::new(re, im)),
            n..=n,
        )
    })
}

fn max_err(a: &[Cf32], b: &[Cf32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| x.max_abs_diff(*y)).fold(0.0, f32::max)
}

proptest! {
    /// FFT followed by IFFT recovers the signal (radix-2 pipeline).
    #[test]
    fn radix2_roundtrip(signal in arb_signal(9)) {
        let mut data = signal.clone();
        fft_radix2(&mut data);
        ifft_radix2(&mut data);
        let scale = signal.iter().map(|c| c.abs()).fold(1.0f32, f32::max);
        prop_assert!(max_err(&signal, &data) <= 1e-4 * scale * signal.len() as f32);
    }

    /// Radix-2 and mixed radix-4 agree on identical input.
    #[test]
    fn radix2_and_radix4_agree(signal in arb_signal(8)) {
        let mut a = signal.clone();
        let mut b = signal.clone();
        fft_radix2(&mut a);
        fft_radix4(&mut b);
        let scale = signal.iter().map(|c| c.abs()).fold(1.0f32, f32::max);
        prop_assert!(max_err(&a, &b) <= 2e-4 * scale * signal.len() as f32);
    }

    /// The planned interface matches the naive DFT on small sizes.
    #[test]
    fn plan_matches_dft(signal in arb_signal(6)) {
        let plan = Fft::forward(signal.len()).unwrap();
        let mut data = signal.clone();
        plan.process(&mut data).unwrap();
        let reference = dft_naive(&signal);
        let scale = signal.iter().map(|c| c.abs()).fold(1.0f32, f32::max);
        prop_assert!(max_err(&data, &reference) <= 1e-3 * scale * signal.len() as f32);
    }

    /// Parseval: energy is preserved (up to the 1/N convention).
    #[test]
    fn parseval_holds(signal in arb_signal(8)) {
        let mut data = signal.clone();
        fft_radix2(&mut data);
        let time: f64 = signal.iter().map(|c| f64::from(c.norm_sqr())).sum();
        let freq: f64 =
            data.iter().map(|c| f64::from(c.norm_sqr())).sum::<f64>() / signal.len() as f64;
        if time > 1e-3 {
            prop_assert!(((time - freq) / time).abs() < 1e-3, "time {time} freq {freq}");
        }
    }

    /// Linearity of the transform.
    #[test]
    fn fft_is_linear(a in arb_signal(6)) {
        let sum_input: Vec<Cf32> = a.iter().map(|x| *x + x.scale(2.0)).collect();
        let mut lhs = sum_input;
        fft_radix2(&mut lhs);
        let mut rhs = a.clone();
        fft_radix2(&mut rhs);
        let rhs: Vec<Cf32> = rhs.iter().map(|x| x.scale(3.0)).collect();
        let scale = a.iter().map(|c| c.abs()).fold(1.0f32, f32::max);
        prop_assert!(max_err(&lhs, &rhs) <= 1e-3 * scale * a.len() as f32);
    }
}
