//! Naive O(n²) discrete Fourier transform — the correctness oracle.

use crate::complex::Cf32;

/// Computes the forward DFT of `input` by direct summation.
///
/// `X[k] = Σ_n x[n] · e^{-2πikn/N}`. Used only in tests and verification;
/// all performance-sensitive paths use the FFT implementations.
///
/// # Example
///
/// ```
/// use triarch_fft::{dft_naive, Cf32};
///
/// let x = vec![Cf32::ONE; 4];
/// let spectrum = dft_naive(&x);
/// assert!((spectrum[0].re - 4.0).abs() < 1e-5);
/// assert!(spectrum[1].abs() < 1e-5);
/// ```
#[must_use]
pub fn dft_naive(input: &[Cf32]) -> Vec<Cf32> {
    let n = input.len();
    let mut out = vec![Cf32::ZERO; n];
    for (k, bin) in out.iter_mut().enumerate() {
        let mut acc = Cf32::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let theta = -2.0 * std::f64::consts::PI * (k as f64) * (j as f64) / (n as f64);
            let w = Cf32::new(theta.cos() as f32, theta.sin() as f32);
            acc += x * w;
        }
        *bin = acc;
    }
    out
}

/// Computes the inverse DFT of `input` by direct summation, including the
/// `1/N` normalization.
#[must_use]
pub fn idft_naive(input: &[Cf32]) -> Vec<Cf32> {
    let n = input.len();
    let mut out = vec![Cf32::ZERO; n];
    for (k, bin) in out.iter_mut().enumerate() {
        let mut acc = Cf32::ZERO;
        for (j, &x) in input.iter().enumerate() {
            let theta = 2.0 * std::f64::consts::PI * (k as f64) * (j as f64) / (n as f64);
            let w = Cf32::new(theta.cos() as f32, theta.sin() as f32);
            acc += x * w;
        }
        *bin = acc.scale(1.0 / n as f32);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn max_err(a: &[Cf32], b: &[Cf32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x.max_abs_diff(*y)).fold(0.0, f32::max)
    }

    #[test]
    fn impulse_transforms_to_flat_spectrum() {
        let mut x = vec![Cf32::ZERO; 8];
        x[0] = Cf32::ONE;
        let spectrum = dft_naive(&x);
        for bin in &spectrum {
            assert!(bin.max_abs_diff(Cf32::ONE) < 1e-5);
        }
    }

    #[test]
    fn single_tone_lands_in_one_bin() {
        let n = 16;
        let x: Vec<Cf32> = (0..n)
            .map(|j| Cf32::from_angle(2.0 * std::f32::consts::PI * 3.0 * j as f32 / n as f32))
            .collect();
        let spectrum = dft_naive(&x);
        assert!((spectrum[3].re - n as f32).abs() < 1e-3);
        for (k, bin) in spectrum.iter().enumerate() {
            if k != 3 {
                assert!(bin.abs() < 1e-3, "leakage in bin {k}: {bin}");
            }
        }
    }

    #[test]
    fn idft_inverts_dft() {
        let x: Vec<Cf32> =
            (0..32).map(|j| Cf32::new((j as f32 * 0.37).sin(), (j as f32 * 0.11).cos())).collect();
        let round_trip = idft_naive(&dft_naive(&x));
        assert!(max_err(&x, &round_trip) < 1e-4);
    }

    #[test]
    fn linearity() {
        let a: Vec<Cf32> = (0..8).map(|j| Cf32::new(j as f32, 0.0)).collect();
        let b: Vec<Cf32> = (0..8).map(|j| Cf32::new(0.0, -(j as f32))).collect();
        let sum: Vec<Cf32> = a.iter().zip(&b).map(|(x, y)| *x + *y).collect();
        let lhs = dft_naive(&sum);
        let rhs: Vec<Cf32> = dft_naive(&a).iter().zip(dft_naive(&b)).map(|(x, y)| *x + y).collect();
        assert!(max_err(&lhs, &rhs) < 1e-4);
    }

    #[test]
    fn empty_input_is_empty_output() {
        assert!(dft_naive(&[]).is_empty());
        assert!(idft_naive(&[]).is_empty());
    }
}
