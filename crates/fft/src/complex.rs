//! Single-precision complex arithmetic.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A single-precision complex number.
///
/// All signal data in the study is interleaved single-precision complex,
/// matching the paper's "all computations are done using single-precision
/// floating-point operations".
///
/// # Example
///
/// ```
/// use triarch_fft::Cf32;
///
/// let a = Cf32::new(1.0, 2.0);
/// let b = Cf32::new(3.0, -1.0);
/// assert_eq!(a * b, Cf32::new(5.0, 5.0));
/// assert_eq!(a + b, Cf32::new(4.0, 1.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Cf32 {
    /// Real part.
    pub re: f32,
    /// Imaginary part.
    pub im: f32,
}

impl Cf32 {
    /// The complex zero.
    pub const ZERO: Cf32 = Cf32 { re: 0.0, im: 0.0 };
    /// The complex one.
    pub const ONE: Cf32 = Cf32 { re: 1.0, im: 0.0 };
    /// The imaginary unit `i`.
    pub const I: Cf32 = Cf32 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular parts.
    #[must_use]
    pub const fn new(re: f32, im: f32) -> Self {
        Cf32 { re, im }
    }

    /// `e^{iθ}` for angle `theta` in radians.
    #[must_use]
    pub fn from_angle(theta: f32) -> Self {
        Cf32 { re: theta.cos(), im: theta.sin() }
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Self {
        Cf32 { re: self.re, im: -self.im }
    }

    /// Squared magnitude `re² + im²`.
    #[must_use]
    pub fn norm_sqr(self) -> f32 {
        self.re * self.re + self.im * self.im
    }

    /// Magnitude.
    #[must_use]
    pub fn abs(self) -> f32 {
        self.norm_sqr().sqrt()
    }

    /// Multiplication by `i` (a quarter-turn) without any multiplies.
    #[must_use]
    pub fn mul_i(self) -> Self {
        Cf32 { re: -self.im, im: self.re }
    }

    /// Multiplication by `-i` without any multiplies.
    #[must_use]
    pub fn mul_neg_i(self) -> Self {
        Cf32 { re: self.im, im: -self.re }
    }

    /// Scales both parts by a real factor.
    #[must_use]
    pub fn scale(self, s: f32) -> Self {
        Cf32 { re: self.re * s, im: self.im * s }
    }

    /// Largest absolute difference between parts of `self` and `other`.
    #[must_use]
    pub fn max_abs_diff(self, other: Cf32) -> f32 {
        (self.re - other.re).abs().max((self.im - other.im).abs())
    }
}

impl Add for Cf32 {
    type Output = Cf32;
    fn add(self, rhs: Cf32) -> Cf32 {
        Cf32 { re: self.re + rhs.re, im: self.im + rhs.im }
    }
}

impl AddAssign for Cf32 {
    fn add_assign(&mut self, rhs: Cf32) {
        *self = *self + rhs;
    }
}

impl Sub for Cf32 {
    type Output = Cf32;
    fn sub(self, rhs: Cf32) -> Cf32 {
        Cf32 { re: self.re - rhs.re, im: self.im - rhs.im }
    }
}

impl SubAssign for Cf32 {
    fn sub_assign(&mut self, rhs: Cf32) {
        *self = *self - rhs;
    }
}

impl Mul for Cf32 {
    type Output = Cf32;
    fn mul(self, rhs: Cf32) -> Cf32 {
        Cf32 { re: self.re * rhs.re - self.im * rhs.im, im: self.re * rhs.im + self.im * rhs.re }
    }
}

impl MulAssign for Cf32 {
    fn mul_assign(&mut self, rhs: Cf32) {
        *self = *self * rhs;
    }
}

impl Mul<f32> for Cf32 {
    type Output = Cf32;
    fn mul(self, rhs: f32) -> Cf32 {
        self.scale(rhs)
    }
}

impl Div for Cf32 {
    type Output = Cf32;
    fn div(self, rhs: Cf32) -> Cf32 {
        let d = rhs.norm_sqr();
        Cf32 {
            re: (self.re * rhs.re + self.im * rhs.im) / d,
            im: (self.im * rhs.re - self.re * rhs.im) / d,
        }
    }
}

impl Neg for Cf32 {
    type Output = Cf32;
    fn neg(self) -> Cf32 {
        Cf32 { re: -self.re, im: -self.im }
    }
}

impl fmt::Display for Cf32 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let a = Cf32::new(2.0, -3.0);
        assert_eq!(a + Cf32::ZERO, a);
        assert_eq!(a * Cf32::ONE, a);
        assert_eq!(a - a, Cf32::ZERO);
        assert_eq!(-a, Cf32::new(-2.0, 3.0));
        assert_eq!(a * Cf32::I, a.mul_i());
        assert_eq!(a * (-Cf32::I), a.mul_neg_i());
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Cf32::new(1.5, -0.25);
        let b = Cf32::new(-2.0, 4.0);
        let q = (a * b) / b;
        assert!(q.max_abs_diff(a) < 1e-6);
    }

    #[test]
    fn conjugate_and_norm() {
        let a = Cf32::new(3.0, 4.0);
        assert_eq!(a.norm_sqr(), 25.0);
        assert_eq!(a.abs(), 5.0);
        let p = a * a.conj();
        assert!(p.max_abs_diff(Cf32::new(25.0, 0.0)) < 1e-6);
    }

    #[test]
    fn from_angle_is_unit() {
        for k in 0..8 {
            let theta = k as f32 * std::f32::consts::FRAC_PI_4;
            let z = Cf32::from_angle(theta);
            assert!((z.abs() - 1.0).abs() < 1e-6);
        }
        assert!(Cf32::from_angle(0.0).max_abs_diff(Cf32::ONE) < 1e-7);
    }

    #[test]
    fn display_formats_sign() {
        assert_eq!(Cf32::new(1.0, 2.0).to_string(), "1+2i");
        assert_eq!(Cf32::new(1.0, -2.0).to_string(), "1-2i");
    }

    #[test]
    fn scale_and_mul_f32_agree() {
        let a = Cf32::new(2.0, -6.0);
        assert_eq!(a.scale(0.5), a * 0.5f32);
        assert_eq!(a.scale(0.5), Cf32::new(1.0, -3.0));
    }

    #[test]
    fn assign_ops() {
        let mut a = Cf32::new(1.0, 1.0);
        a += Cf32::new(1.0, 0.0);
        assert_eq!(a, Cf32::new(2.0, 1.0));
        a -= Cf32::new(0.0, 1.0);
        assert_eq!(a, Cf32::new(2.0, 0.0));
        a *= Cf32::new(0.0, 1.0);
        assert_eq!(a, Cf32::new(0.0, 2.0));
    }
}
