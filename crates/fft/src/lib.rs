//! FFT substrate for the `triarch` study.
//!
//! The paper's CSLC kernel is dominated by 128-point FFTs/IFFTs. Each
//! architecture mapping uses a different algorithm (paper Section 3.2):
//!
//! - VIRAM and Imagine use a hand-optimized **radix-4** FFT; since 128 is
//!   not a power of four, three radix-4 stages are combined with one
//!   radix-2 stage ([`fft_mixed_128`] and the general [`Fft`] planner).
//! - Raw uses a plain C **radix-2** FFT (the radix-4 version spilled
//!   registers), which executes about 1.5× the operations.
//!
//! This crate provides all of those, a naive DFT used as the correctness
//! oracle in tests, and operation-count models ([`ops`]) that feed the
//! Section 2.5 performance models.
//!
//! # Example
//!
//! ```
//! use triarch_fft::{Cf32, Fft};
//!
//! # fn main() -> Result<(), triarch_fft::FftError> {
//! let fft = Fft::forward(128)?;
//! let mut data: Vec<Cf32> = (0..128).map(|i| Cf32::new(i as f32, 0.0)).collect();
//! fft.process(&mut data)?;
//! // DC bin is the sum of the inputs: 0 + 1 + ... + 127 = 8128.
//! assert!((data[0].re - 8128.0).abs() < 1e-2);
//! # Ok(())
//! # }
//! ```

pub mod complex;
pub mod dft;
pub mod ops;
pub mod plan;
pub mod radix2;
pub mod radix4;
pub mod twiddle;

pub use complex::Cf32;
pub use dft::{dft_naive, idft_naive};
pub use ops::OpCount;
pub use plan::{Direction, Fft, FftError};
pub use radix2::{fft_radix2, ifft_radix2};
pub use radix4::{fft_mixed_128, fft_radix4};
