//! A fallible, planned FFT interface.

use std::error::Error;
use std::fmt;

use crate::complex::Cf32;
use crate::radix4::{fft_radix4, ifft_radix4};

/// Transform direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Time → frequency.
    Forward,
    /// Frequency → time (includes `1/N` scaling).
    Inverse,
}

/// Errors from planning or executing a transform.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FftError {
    /// The requested length is not a power of two.
    NotPowerOfTwo {
        /// The rejected length.
        len: usize,
    },
    /// A buffer of the wrong length was passed to a plan.
    LengthMismatch {
        /// Length the plan was built for.
        expected: usize,
        /// Length of the buffer provided.
        got: usize,
    },
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FftError::NotPowerOfTwo { len } => {
                write!(f, "fft length {len} is not a power of two")
            }
            FftError::LengthMismatch { expected, got } => {
                write!(f, "fft plan expects {expected} points, buffer has {got}")
            }
        }
    }
}

impl Error for FftError {}

/// A planned transform of a fixed length and direction.
///
/// The plan uses the mixed radix-4/radix-2 algorithm of the paper's VIRAM
/// and Imagine mappings. For the raw radix-2 algorithm used on Raw, call
/// [`crate::fft_radix2`] directly.
///
/// # Example
///
/// ```
/// use triarch_fft::{Cf32, Direction, Fft};
///
/// # fn main() -> Result<(), triarch_fft::FftError> {
/// let forward = Fft::forward(128)?;
/// let inverse = Fft::new(128, Direction::Inverse)?;
/// let original: Vec<Cf32> = (0..128).map(|i| Cf32::new((i as f32).sin(), 0.0)).collect();
/// let mut data = original.clone();
/// forward.process(&mut data)?;
/// inverse.process(&mut data)?;
/// let err = data.iter().zip(&original).map(|(a, b)| a.max_abs_diff(*b)).fold(0.0, f32::max);
/// assert!(err < 1e-4);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Fft {
    len: usize,
    direction: Direction,
}

impl Fft {
    /// Plans a transform of `len` points in `direction`.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] unless `len` is a power of two.
    pub fn new(len: usize, direction: Direction) -> Result<Self, FftError> {
        if !len.is_power_of_two() {
            return Err(FftError::NotPowerOfTwo { len });
        }
        Ok(Fft { len, direction })
    }

    /// Plans a forward transform.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] unless `len` is a power of two.
    pub fn forward(len: usize) -> Result<Self, FftError> {
        Fft::new(len, Direction::Forward)
    }

    /// Plans an inverse transform.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::NotPowerOfTwo`] unless `len` is a power of two.
    pub fn inverse(len: usize) -> Result<Self, FftError> {
        Fft::new(len, Direction::Inverse)
    }

    /// The planned length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the plan is for the degenerate zero-length transform.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The planned direction.
    #[must_use]
    pub fn direction(&self) -> Direction {
        self.direction
    }

    /// Executes the transform in place.
    ///
    /// # Errors
    ///
    /// Returns [`FftError::LengthMismatch`] if `data.len()` differs from
    /// the planned length.
    pub fn process(&self, data: &mut [Cf32]) -> Result<(), FftError> {
        if data.len() != self.len {
            return Err(FftError::LengthMismatch { expected: self.len, got: data.len() });
        }
        match self.direction {
            Direction::Forward => fft_radix4(data),
            Direction::Inverse => ifft_radix4(data),
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_non_power_of_two() {
        assert_eq!(Fft::forward(100).unwrap_err(), FftError::NotPowerOfTwo { len: 100 });
        assert!(Fft::forward(128).is_ok());
    }

    #[test]
    fn rejects_wrong_buffer_length() {
        let plan = Fft::forward(64).unwrap();
        let mut data = vec![Cf32::ZERO; 32];
        assert_eq!(
            plan.process(&mut data),
            Err(FftError::LengthMismatch { expected: 64, got: 32 })
        );
    }

    #[test]
    fn accessors() {
        let plan = Fft::inverse(256).unwrap();
        assert_eq!(plan.len(), 256);
        assert!(!plan.is_empty());
        assert_eq!(plan.direction(), Direction::Inverse);
    }

    #[test]
    fn error_messages() {
        assert!(FftError::NotPowerOfTwo { len: 12 }.to_string().contains("12"));
        let e = FftError::LengthMismatch { expected: 4, got: 2 };
        assert!(e.to_string().contains("4"));
        assert!(e.to_string().contains("2"));
    }

    #[test]
    fn forward_then_inverse_is_identity() {
        let f = Fft::forward(32).unwrap();
        let i = Fft::inverse(32).unwrap();
        let original: Vec<Cf32> = (0..32).map(|k| Cf32::new(k as f32, -(k as f32) * 0.5)).collect();
        let mut data = original.clone();
        f.process(&mut data).unwrap();
        i.process(&mut data).unwrap();
        let err = data.iter().zip(&original).map(|(a, b)| a.max_abs_diff(*b)).fold(0.0, f32::max);
        assert!(err < 1e-3);
    }
}
