//! Iterative radix-2 decimation-in-time FFT.
//!
//! This is the algorithm the paper's Raw mapping uses ("a C implementation
//! of the radix-2 FFT is used for Raw because it provided better
//! performance than the radix-4 FFT because of register spilling").

use crate::complex::Cf32;
use crate::twiddle::{bit_reverse_permute, forward_twiddles, inverse_twiddles};

fn fft_in_place(data: &mut [Cf32], twiddles: &[Cf32]) {
    let n = data.len();
    bit_reverse_permute(data);
    let mut len = 2;
    while len <= n {
        let half = len / 2;
        let step = n / len;
        for start in (0..n).step_by(len) {
            for k in 0..half {
                let w = twiddles[k * step];
                let a = data[start + k];
                let b = data[start + k + half] * w;
                data[start + k] = a + b;
                data[start + k + half] = a - b;
            }
        }
        len *= 2;
    }
}

/// Computes the forward FFT of `data` in place using radix-2 DIT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two. Use [`crate::Fft`] for a
/// fallible, planned interface.
pub fn fft_radix2(data: &mut [Cf32]) {
    if data.len() <= 1 {
        return;
    }
    let twiddles = forward_twiddles(data.len());
    fft_in_place(data, &twiddles);
}

/// Computes the inverse FFT of `data` in place (with `1/N` scaling) using
/// radix-2 DIT.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft_radix2(data: &mut [Cf32]) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    let twiddles = inverse_twiddles(n);
    fft_in_place(data, &twiddles);
    let inv = 1.0 / n as f32;
    for v in data.iter_mut() {
        *v = v.scale(inv);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;

    fn max_err(a: &[Cf32], b: &[Cf32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x.max_abs_diff(*y)).fold(0.0, f32::max)
    }

    fn signal(n: usize) -> Vec<Cf32> {
        (0..n).map(|j| Cf32::new((j as f32 * 0.7).sin() + 0.3, (j as f32 * 1.3).cos())).collect()
    }

    #[test]
    fn matches_naive_dft_across_sizes() {
        for &n in &[1usize, 2, 4, 8, 32, 128, 512] {
            let x = signal(n);
            let mut y = x.clone();
            fft_radix2(&mut y);
            let reference = dft_naive(&x);
            let scale = n as f32;
            assert!(
                max_err(&y, &reference) < 1e-3 * scale.max(1.0),
                "radix-2 diverges from DFT at n={n}"
            );
        }
    }

    #[test]
    fn ifft_inverts_fft() {
        for &n in &[2usize, 16, 128] {
            let x = signal(n);
            let mut y = x.clone();
            fft_radix2(&mut y);
            ifft_radix2(&mut y);
            assert!(max_err(&x, &y) < 1e-4, "round trip failed at n={n}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let n = 128;
        let x = signal(n);
        let mut y = x.clone();
        fft_radix2(&mut y);
        let time_energy: f32 = x.iter().map(|v| v.norm_sqr()).sum();
        let freq_energy: f32 = y.iter().map(|v| v.norm_sqr()).sum::<f32>() / n as f32;
        assert!((time_energy - freq_energy).abs() / time_energy < 1e-4);
    }

    #[test]
    fn trivial_lengths_are_no_ops() {
        let mut empty: Vec<Cf32> = vec![];
        fft_radix2(&mut empty);
        ifft_radix2(&mut empty);
        let mut one = vec![Cf32::new(3.0, 4.0)];
        fft_radix2(&mut one);
        assert_eq!(one[0], Cf32::new(3.0, 4.0));
        ifft_radix2(&mut one);
        assert_eq!(one[0], Cf32::new(3.0, 4.0));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let mut data = vec![Cf32::ZERO; 12];
        fft_radix2(&mut data);
    }
}
