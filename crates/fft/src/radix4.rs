//! Recursive radix-4 (and mixed radix-4/radix-2) decimation-in-time FFT.
//!
//! The paper's VIRAM and Imagine mappings use "a parallelized
//! hand-optimized radix-4 FFT"; since the CSLC's FFT length is 128 — not a
//! power of four — "three radix-4 stages and one radix-2 stage" are used.
//! [`fft_mixed_128`] reproduces exactly that stage structure, and the
//! recursion generalizes to any power of two.

use crate::complex::Cf32;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Forward,
    Inverse,
}

fn twiddle(k: usize, n: usize, dir: Dir) -> Cf32 {
    let sign = match dir {
        Dir::Forward => -1.0,
        Dir::Inverse => 1.0,
    };
    let theta = sign * 2.0 * std::f64::consts::PI * k as f64 / n as f64;
    Cf32::new(theta.cos() as f32, theta.sin() as f32)
}

/// Recursive mixed-radix transform: radix-4 while divisible by four,
/// finishing with a radix-2 stage for lengths `2 * 4^m`.
fn fft_rec(data: &mut [Cf32], dir: Dir) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    if n == 2 {
        let a = data[0];
        let b = data[1];
        data[0] = a + b;
        data[1] = a - b;
        return;
    }
    // Any power of two above 2 is divisible by 4, so the recursion is
    // radix-4 all the way down to a final radix-2 (n == 2) stage — for
    // n = 128 that is exactly the paper's "three radix-4 stages and one
    // radix-2 stage".
    debug_assert!(n.is_multiple_of(4), "length must be a power of two");
    {
        let q = n / 4;
        let mut sub: [Vec<Cf32>; 4] = [
            Vec::with_capacity(q),
            Vec::with_capacity(q),
            Vec::with_capacity(q),
            Vec::with_capacity(q),
        ];
        for (i, &v) in data.iter().enumerate() {
            sub[i % 4].push(v);
        }
        for s in sub.iter_mut() {
            fft_rec(s, dir);
        }
        for k in 0..q {
            let a = sub[0][k];
            let b = sub[1][k] * twiddle(k, n, dir);
            let c = sub[2][k] * twiddle(2 * k, n, dir);
            let d = sub[3][k] * twiddle(3 * k, n, dir);
            let (ib, id) = match dir {
                Dir::Forward => (b.mul_neg_i(), d.mul_neg_i()),
                Dir::Inverse => (b.mul_i(), d.mul_i()),
            };
            data[k] = a + b + c + d;
            data[k + q] = a + ib - c - id;
            data[k + 2 * q] = a - b + c - d;
            data[k + 3 * q] = a - ib - c + id;
        }
    }
}

/// Computes the forward FFT in place using radix-4 stages (with one
/// radix-2 stage when the length is `2 · 4^m`).
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn fft_radix4(data: &mut [Cf32]) {
    assert!(
        data.is_empty() || data.len().is_power_of_two(),
        "radix-4 FFT requires a power-of-two length"
    );
    fft_rec(data, Dir::Forward);
}

/// Computes the inverse FFT in place (with `1/N` scaling) using the same
/// radix-4 stage structure.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn ifft_radix4(data: &mut [Cf32]) {
    assert!(
        data.is_empty() || data.len().is_power_of_two(),
        "radix-4 IFFT requires a power-of-two length"
    );
    let n = data.len();
    fft_rec(data, Dir::Inverse);
    if n > 0 {
        let inv = 1.0 / n as f32;
        for v in data.iter_mut() {
            *v = v.scale(inv);
        }
    }
}

/// The paper's CSLC transform: a 128-point FFT executed as three radix-4
/// stages plus one radix-2 stage.
///
/// # Panics
///
/// Panics if `data.len() != 128`.
pub fn fft_mixed_128(data: &mut [Cf32]) {
    assert_eq!(data.len(), 128, "fft_mixed_128 requires exactly 128 points");
    fft_rec(data, Dir::Forward);
}

/// Inverse of [`fft_mixed_128`], with `1/128` scaling.
///
/// # Panics
///
/// Panics if `data.len() != 128`.
pub fn ifft_mixed_128(data: &mut [Cf32]) {
    assert_eq!(data.len(), 128, "ifft_mixed_128 requires exactly 128 points");
    fft_rec(data, Dir::Inverse);
    for v in data.iter_mut() {
        *v = v.scale(1.0 / 128.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dft::dft_naive;
    use crate::radix2::fft_radix2;

    fn max_err(a: &[Cf32], b: &[Cf32]) -> f32 {
        a.iter().zip(b).map(|(x, y)| x.max_abs_diff(*y)).fold(0.0, f32::max)
    }

    fn signal(n: usize) -> Vec<Cf32> {
        (0..n).map(|j| Cf32::new((j as f32 * 0.9).sin() - 0.1, (j as f32 * 0.4).cos())).collect()
    }

    #[test]
    fn matches_naive_dft() {
        for &n in &[4usize, 16, 64, 256] {
            let x = signal(n);
            let mut y = x.clone();
            fft_radix4(&mut y);
            assert!(max_err(&y, &dft_naive(&x)) < 1e-3 * n as f32, "n={n}");
        }
    }

    #[test]
    fn mixed_128_matches_radix2() {
        let x = signal(128);
        let mut a = x.clone();
        let mut b = x;
        fft_mixed_128(&mut a);
        fft_radix2(&mut b);
        assert!(max_err(&a, &b) < 1e-2);
    }

    #[test]
    fn handles_two_times_power_of_four() {
        // 8, 32, 128, 512 end in the radix-2 (n == 2) base stage.
        for &n in &[2usize, 8, 32, 128, 512] {
            let x = signal(n);
            let mut y = x.clone();
            fft_radix4(&mut y);
            assert!(max_err(&y, &dft_naive(&x)) < 1e-3 * n as f32, "n={n}");
        }
    }

    #[test]
    fn inverse_round_trip() {
        for &n in &[4usize, 8, 128] {
            let x = signal(n);
            let mut y = x.clone();
            fft_radix4(&mut y);
            ifft_radix4(&mut y);
            assert!(max_err(&x, &y) < 1e-4, "n={n}");
        }
        let x = signal(128);
        let mut y = x.clone();
        fft_mixed_128(&mut y);
        ifft_mixed_128(&mut y);
        assert!(max_err(&x, &y) < 1e-4);
    }

    #[test]
    #[should_panic(expected = "128 points")]
    fn mixed_128_rejects_other_lengths() {
        let mut data = vec![Cf32::ZERO; 64];
        fft_mixed_128(&mut data);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn radix4_rejects_non_power_of_two() {
        let mut data = vec![Cf32::ZERO; 24];
        fft_radix4(&mut data);
    }

    #[test]
    fn empty_and_single_are_no_ops() {
        let mut empty: Vec<Cf32> = vec![];
        fft_radix4(&mut empty);
        ifft_radix4(&mut empty);
        let mut one = vec![Cf32::new(1.0, -1.0)];
        fft_radix4(&mut one);
        assert_eq!(one[0], Cf32::new(1.0, -1.0));
    }
}
