//! Twiddle-factor tables and index-reversal permutations.

use crate::complex::Cf32;

/// Precomputed twiddle factors `w^k = e^{-2πik/n}` for `k in 0..n/2`.
///
/// Computed in `f64` and rounded once, so tables are as accurate as `f32`
/// allows regardless of `n`.
#[must_use]
pub fn forward_twiddles(n: usize) -> Vec<Cf32> {
    (0..n / 2)
        .map(|k| {
            let theta = -2.0 * std::f64::consts::PI * k as f64 / n as f64;
            Cf32::new(theta.cos() as f32, theta.sin() as f32)
        })
        .collect()
}

/// Precomputed inverse twiddle factors `e^{+2πik/n}` for `k in 0..n/2`.
#[must_use]
pub fn inverse_twiddles(n: usize) -> Vec<Cf32> {
    forward_twiddles(n).into_iter().map(Cf32::conj).collect()
}

/// Reverses the lowest `bits` bits of `i`.
#[must_use]
pub fn bit_reverse(i: usize, bits: u32) -> usize {
    if bits == 0 {
        return 0;
    }
    i.reverse_bits() >> (usize::BITS - bits)
}

/// Permutes `data` into bit-reversed order in place.
///
/// # Panics
///
/// Panics if `data.len()` is not a power of two.
pub fn bit_reverse_permute<T>(data: &mut [T]) {
    let n = data.len();
    assert!(n.is_power_of_two(), "bit reversal requires a power-of-two length");
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = bit_reverse(i, bits);
        if j > i {
            data.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twiddles_lie_on_unit_circle() {
        for &n in &[2usize, 8, 128, 1024] {
            for w in forward_twiddles(n) {
                assert!((w.abs() - 1.0).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn first_twiddle_is_one() {
        let t = forward_twiddles(8);
        assert!(t[0].max_abs_diff(Cf32::ONE) < 1e-7);
        // w^{n/4} = -i for the forward transform.
        assert!(t[2].max_abs_diff(Cf32::new(0.0, -1.0)) < 1e-6);
    }

    #[test]
    fn inverse_twiddles_are_conjugates() {
        let f = forward_twiddles(64);
        let i = inverse_twiddles(64);
        for (a, b) in f.iter().zip(&i) {
            assert_eq!(a.conj(), *b);
        }
    }

    #[test]
    fn bit_reverse_small_cases() {
        assert_eq!(bit_reverse(0b001, 3), 0b100);
        assert_eq!(bit_reverse(0b011, 3), 0b110);
        assert_eq!(bit_reverse(0b101, 3), 0b101);
        assert_eq!(bit_reverse(1, 1), 1);
        assert_eq!(bit_reverse(0, 0), 0);
    }

    #[test]
    fn bit_reverse_is_involution() {
        for bits in 1..=10u32 {
            for i in 0..(1usize << bits) {
                assert_eq!(bit_reverse(bit_reverse(i, bits), bits), i);
            }
        }
    }

    #[test]
    fn permute_is_involution() {
        let original: Vec<usize> = (0..64).collect();
        let mut data = original.clone();
        bit_reverse_permute(&mut data);
        assert_ne!(data, original);
        bit_reverse_permute(&mut data);
        assert_eq!(data, original);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn permute_rejects_non_power_of_two() {
        let mut data = vec![0u8; 12];
        bit_reverse_permute(&mut data);
    }
}
