//! Floating-point operation-count models for the FFT algorithms.
//!
//! These feed the Section 2.5 performance models and the ALU-utilization
//! numbers quoted in the paper ("ALU utilization (as measured by minimum
//! FFT computations / total ALU cycles available) is 25.5%").

/// A count of real floating-point additions and multiplications.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpCount {
    /// Real additions/subtractions.
    pub adds: u64,
    /// Real multiplications.
    pub muls: u64,
}

impl OpCount {
    /// Creates an op count.
    #[must_use]
    pub const fn new(adds: u64, muls: u64) -> Self {
        OpCount { adds, muls }
    }

    /// Total real floating-point operations.
    #[must_use]
    pub const fn total(self) -> u64 {
        self.adds + self.muls
    }

    /// Sums two counts.
    #[must_use]
    pub const fn plus(self, other: OpCount) -> OpCount {
        OpCount { adds: self.adds + other.adds, muls: self.muls + other.muls }
    }

    /// Scales both fields by an integer factor.
    #[must_use]
    pub const fn times(self, k: u64) -> OpCount {
        OpCount { adds: self.adds * k, muls: self.muls * k }
    }
}

/// Real-operation count of an `n`-point radix-2 FFT: `n/2·log2(n)`
/// butterflies, each one complex multiply (4 mul + 2 add) and two complex
/// adds (4 adds) — the classic `5·n·log2(n)` total.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
#[must_use]
pub fn radix2_ops(n: usize) -> OpCount {
    assert!(n.is_power_of_two(), "FFT op counts require power-of-two lengths");
    if n < 2 {
        return OpCount::default();
    }
    let stages = n.trailing_zeros() as u64;
    let butterflies = (n as u64 / 2) * stages;
    OpCount { adds: butterflies * 6, muls: butterflies * 4 }
}

/// Real-operation count of the mixed radix-4/radix-2 FFT used by the
/// VIRAM and Imagine mappings.
///
/// Each radix-4 "dragonfly" performs 3 complex multiplies (12 mul,
/// 6 add) and 8 complex additions (16 add) = 34 real ops covering two
/// log2-stages; a trailing radix-2 stage (when `n = 2·4^m`) costs `5n`.
///
/// # Panics
///
/// Panics if `n` is not a power of two.
#[must_use]
pub fn radix4_ops(n: usize) -> OpCount {
    assert!(n.is_power_of_two(), "FFT op counts require power-of-two lengths");
    if n < 2 {
        return OpCount::default();
    }
    let log2 = n.trailing_zeros() as u64;
    let radix4_stages = log2 / 2;
    let has_radix2_tail = log2 % 2 == 1;
    let dragonflies = (n as u64 / 4) * radix4_stages;
    let mut ops = OpCount { adds: dragonflies * 22, muls: dragonflies * 12 };
    if has_radix2_tail {
        let butterflies = n as u64 / 2;
        ops = ops.plus(OpCount { adds: butterflies * 6, muls: butterflies * 4 });
    }
    ops
}

/// Op count of the paper's 128-point CSLC transform (3 radix-4 stages and
/// 1 radix-2 stage).
#[must_use]
pub fn mixed_128_ops() -> OpCount {
    radix4_ops(128)
}

/// Ratio of radix-2 to radix-4 *instruction* counts including loads and
/// stores, as reported for Raw in the paper ("The number of operations
/// (including loads and stores) in the radix-2 FFT is about 1.5 the number
/// in the radix-4 FFT").
#[must_use]
pub fn radix2_over_radix4_instruction_ratio() -> f64 {
    1.5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn radix2_matches_5n_log2n() {
        assert_eq!(radix2_ops(128).total(), 5 * 128 * 7 / 2 * 2); // 4480
        assert_eq!(radix2_ops(128).total(), 4480);
        assert_eq!(radix2_ops(2).total(), 5 * 2 / 2 * 2); // one butterfly = 10 ops? no: n/2 * 1 stage * 10
        assert_eq!(radix2_ops(2).total(), 10);
        assert_eq!(radix2_ops(1).total(), 0);
    }

    #[test]
    fn radix4_is_cheaper_than_radix2() {
        for &n in &[16usize, 64, 128, 256, 1024] {
            let r2 = radix2_ops(n).total();
            let r4 = radix4_ops(n).total();
            assert!(r4 < r2, "radix-4 should save ops at n={n}: {r4} vs {r2}");
            // The pure-FLOP saving is real but modest; the paper's 1.5x
            // figure includes loads/stores, which op counts exclude.
            assert!((r2 as f64) / (r4 as f64) < 1.5);
        }
    }

    #[test]
    fn mixed_128_stage_structure() {
        // 3 radix-4 stages: 32 dragonflies each = 96 * 34 ops, plus one
        // radix-2 stage: 64 butterflies = 64 * 10 ops.
        let expected = 96 * 34 + 64 * 10;
        assert_eq!(mixed_128_ops().total(), expected);
        assert_eq!(mixed_128_ops(), radix4_ops(128));
    }

    #[test]
    fn op_count_arithmetic() {
        let a = OpCount::new(3, 2);
        assert_eq!(a.total(), 5);
        assert_eq!(a.plus(a).total(), 10);
        assert_eq!(a.times(4), OpCount::new(12, 8));
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn rejects_non_power_of_two() {
        let _ = radix2_ops(100);
    }
}
