#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
#
# Usage: ./ci.sh
#
# The workspace has no crates.io dependencies (rand/proptest/criterion are
# vendored under devstubs/), so every step below works offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy triarch-pool (deny unwrap/expect) =="
cargo clippy -p triarch-pool --all-targets -- -D warnings \
  -D clippy::unwrap_used -D clippy::expect_used

echo "== cargo clippy triarch-metrics (deny unwrap/expect) =="
cargo clippy -p triarch-metrics --all-targets -- -D warnings \
  -D clippy::unwrap_used -D clippy::expect_used

echo "== cargo clippy triarch-profile (deny unwrap/expect) =="
cargo clippy -p triarch-profile --all-targets -- -D warnings \
  -D clippy::unwrap_used -D clippy::expect_used

# triarch-dpu carries crate-level #![warn(clippy::unwrap_used,
# clippy::expect_used)]; -D warnings promotes them to errors.
echo "== cargo clippy triarch-dpu (deny unwrap/expect) =="
cargo clippy -p triarch-dpu --all-targets -- -D warnings

# triarch-serve carries crate-level #![warn(clippy::unwrap_used,
# clippy::expect_used)], so -D warnings alone denies them without
# poisoning its workspace dependencies (core is allowed its expects).
echo "== cargo clippy triarch-serve (deny unwrap/expect) =="
cargo clippy -p triarch-serve --all-targets -- -D warnings

# triarch-timeline carries crate-level #![warn(clippy::unwrap_used,
# clippy::expect_used)]; -D warnings promotes them to errors.
echo "== cargo clippy triarch-timeline (deny unwrap/expect) =="
cargo clippy -p triarch-timeline --all-targets -- -D warnings

echo "== cargo clippy serve_durability suite (deny warnings) =="
cargo clippy -p triarch-bench --test serve_durability -- -D warnings

# The obs module and its validation suite ride the same crate-level
# unwrap/expect lints; the test target needs its own invocation.
echo "== cargo clippy serve_validation suite (deny warnings) =="
cargo clippy -p triarch-serve --test serve_validation -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== repro faultsweep smoke (deterministic, 2 campaigns) =="
out1="$(cargo run --release -q -p triarch-bench --bin repro -- faultsweep --campaigns 2)"
out2="$(cargo run --release -q -p triarch-bench --bin repro -- faultsweep --campaigns 2)"
echo "$out1"
if [ "$out1" != "$out2" ]; then
  echo "faultsweep is not deterministic" >&2
  exit 1
fi

echo "== parallel byte-identity smoke (--jobs 1 vs --jobs 2) =="
j1="$(cargo run --release -q -p triarch-bench --bin repro -- --jobs 1 table3 breakdowns 2>/dev/null)"
j2="$(cargo run --release -q -p triarch-bench --bin repro -- --jobs 2 table3 breakdowns 2>/dev/null)"
if [ "$j1" != "$j2" ]; then
  echo "table3/breakdowns output differs between --jobs 1 and --jobs 2" >&2
  exit 1
fi
f1="$(cargo run --release -q -p triarch-bench --bin repro -- --jobs 1 faultsweep --small --campaigns 2 2>/dev/null)"
f2="$(cargo run --release -q -p triarch-bench --bin repro -- --jobs 2 faultsweep --small --campaigns 2 2>/dev/null)"
if [ "$f1" != "$f2" ]; then
  echo "faultsweep output differs between --jobs 1 and --jobs 2" >&2
  exit 1
fi

echo "== dse smoke (small workloads, 2 workers) =="
dse_out="$(cargo run --release -q -p triarch-bench --bin repro -- dse --small --jobs 2 2>/dev/null)"
echo "$dse_out" | grep -q "Design-space exploration" || {
  echo "dse smoke produced no report" >&2
  exit 1
}
if echo "$dse_out" | grep -q "\[FAIL\]"; then
  echo "dse smoke reported a failing finding" >&2
  echo "$dse_out" >&2
  exit 1
fi

echo "== metrics conservation smoke (drift 0 on all 18 cells) =="
m="$(cargo run --release -q -p triarch-bench --bin repro -- metrics target/ci-metrics --small --jobs 2 2>/dev/null)"
drifts="$(echo "$m" | grep -c "cycle conservation drift 0$" || true)"
if [ "$drifts" != "18" ]; then
  echo "expected 18 cells with cycle conservation drift 0, saw $drifts" >&2
  echo "$m" >&2
  exit 1
fi
test -s target/ci-metrics/metrics.prom || {
  echo "metrics.prom was not written" >&2
  exit 1
}

echo "== flame smoke (fold drift 0 on all 18 cells) =="
fl="$(cargo run --release -q -p triarch-bench --bin repro -- flame target/ci-flame --small --jobs 2 2>/dev/null)"
fd="$(echo "$fl" | grep -c "fold drift 0$" || true)"
if [ "$fd" != "18" ]; then
  echo "expected 18 cells with fold drift 0, saw $fd" >&2
  echo "$fl" >&2
  exit 1
fi
test -s target/ci-flame/viram-corner-turn.folded || {
  echo "collapsed-stack files were not written" >&2
  exit 1
}

echo "== HTML report smoke (all 18 cells, byte-identical regeneration) =="
cargo run --release -q -p triarch-bench --bin repro -- \
  report target/ci-report --small --campaigns 2 --jobs 2 --quiet >/dev/null
cargo run --release -q -p triarch-bench --bin repro -- \
  report target/ci-report-again --small --campaigns 2 --jobs 1 --quiet >/dev/null
for arch in PPC Altivec VIRAM Imagine Raw DPU; do
  for kernel in "Corner Turn" CSLC "Beam Steering"; do
    grep -q "$arch / $kernel" target/ci-report/report.html || {
      echo "report.html is missing cell $arch / $kernel" >&2
      exit 1
    }
  done
done
if ! cmp -s target/ci-report/report.html target/ci-report-again/report.html; then
  echo "report.html is not byte-identical across --jobs 2 and --jobs 1 runs" >&2
  exit 1
fi

echo "== timeline smoke (occupancy drift 0, byte-identity across --jobs) =="
cargo run --release -q -p triarch-bench --bin repro -- \
  timeline target/ci-timeline --small --jobs 2 --quiet > target/ci-timeline-stdout.txt
td="$(grep -c "occupancy drift 0$" target/ci-timeline-stdout.txt || true)"
if [ "$td" != "18" ]; then
  echo "expected 18 cells with occupancy drift 0, saw $td" >&2
  cat target/ci-timeline-stdout.txt >&2
  exit 1
fi
cargo run --release -q -p triarch-bench --bin repro -- \
  timeline target/ci-timeline-again --small --jobs 1 --quiet >/dev/null
for f in timeline.json viram-corner-turn.timeline.csv viram-corner-turn.timeline.svg; do
  test -s "target/ci-timeline/$f" || {
    echo "timeline artifact $f was not written" >&2
    exit 1
  }
  cmp -s "target/ci-timeline/$f" "target/ci-timeline-again/$f" || {
    echo "timeline artifact $f is not byte-identical across --jobs 2 and --jobs 1" >&2
    exit 1
  }
done
wd="$(cargo run --release -q -p triarch-bench --bin repro -- \
  profdiff --windows target/ci-timeline/timeline.json target/ci-timeline-again/timeline.json 2>/dev/null)"
echo "$wd" | grep -q "profdiff --windows: no differences" || {
  echo "windowed self-diff of the timeline artifact found differences" >&2
  echo "$wd" >&2
  exit 1
}

echo "== profdiff self-diff is empty on the committed artifact =="
pd="$(cargo run --release -q -p triarch-bench --bin repro -- \
  profdiff BENCH_table3.json BENCH_table3.json 2>/dev/null)"
echo "$pd" | grep -q "profdiff: no differences" || {
  echo "profdiff of the committed artifact against itself found differences" >&2
  echo "$pd" >&2
  exit 1
}

echo "== serve round-trip smoke (daemon vs one-shot, warm cache hit) =="
serve_sock="target/ci-serve.sock"
cargo run --release -q -p triarch-bench --bin repro -- \
  serve --addr "unix:$serve_sock" --workers 2 --queue 8 --jobs 2 --quiet &
serve_pid=$!
servectl() {
  cargo run --release -q -p triarch-bench --bin servectl -- \
    --addr "unix:$serve_sock" --quiet "$@"
}
serve_fail() {
  echo "$1" >&2
  kill "$serve_pid" 2>/dev/null || true
  exit 1
}
cargo run --release -q -p triarch-bench --bin servectl -- \
  --addr "unix:$serve_sock" --quiet --connect-retries 50 ping \
  || serve_fail "serve daemon never became reachable"
one_shot="$(cargo run --release -q -p triarch-bench --bin repro -- --jobs 2 table3 2>/dev/null)"
cold="$(servectl submit table3)" || serve_fail "cold table3 submit failed"
warm="$(servectl submit table3)" || serve_fail "warm table3 submit failed"
[ "$cold" = "$one_shot" ] || serve_fail "served table3 differs from one-shot repro table3"
[ "$cold" = "$warm" ] || serve_fail "warm cache hit is not byte-identical to the cold miss"
servectl stats | grep -qx "triarch_serve_cache_hits 1" \
  || serve_fail "stats did not count exactly one cache hit"
servectl shutdown || serve_fail "serve shutdown failed"
wait "$serve_pid" || serve_fail "serve daemon exited non-zero"
test ! -e "$serve_sock" || serve_fail "serve daemon left its socket file behind"

echo "== serve durability smoke (SIGKILL, recover, corrupt record) =="
# Run the binaries directly (not via cargo run) so kill -9 hits the
# daemon itself, exactly like a real infrastructure failure.
dur_sock="target/ci-durable.sock"
dur_cache="target/ci-durable-cache"
rm -rf "$dur_cache"
durctl() {
  ./target/release/servectl --addr "unix:$dur_sock" --quiet "$@"
}
dur_start() {
  ./target/release/repro serve --addr "unix:$dur_sock" --cache-dir "$dur_cache" --jobs 2 --quiet &
  dur_pid=$!
  ./target/release/servectl --addr "unix:$dur_sock" --quiet --connect-retries 50 ping \
    || dur_fail "durable daemon never became reachable"
}
dur_fail() {
  echo "$1" >&2
  kill -9 "$dur_pid" 2>/dev/null || true
  exit 1
}
dur_start
cold="$(durctl submit table3)" || dur_fail "cold table3 submit failed"
kill -9 "$dur_pid"
wait "$dur_pid" 2>/dev/null || true
# Restart after the SIGKILL: the cache recovers from disk and the warm
# response is byte-identical to the cold miss and to one-shot repro.
dur_start
durctl stats | grep -qx "triarch_serve_persist_loaded 1" \
  || dur_fail "restart did not recover exactly one cache entry"
warm="$(durctl submit table3)" || dur_fail "warm submit after restart failed"
[ "$warm" = "$cold" ] || dur_fail "post-kill-restart response differs from the cold miss"
[ "$warm" = "$one_shot" ] || dur_fail "post-kill-restart response differs from one-shot repro table3"
durctl shutdown || dur_fail "durable daemon shutdown failed"
wait "$dur_pid" || dur_fail "durable daemon exited non-zero"
# Corrupt the stored record: the next restart must skip it (counted,
# no panic) and recompute the identical artifact as a fresh miss.
dur_rec="$(ls "$dur_cache"/*.trsc | head -1)"
dd if=/dev/zero of="$dur_rec" bs=1 count=8 seek=40 conv=notrunc status=none
dur_start
durctl stats | grep -qx "triarch_serve_persist_skipped_corrupt 1" \
  || dur_fail "restart did not count the corrupt record"
redo="$(durctl submit table3)" || dur_fail "resubmit after corruption failed"
[ "$redo" = "$one_shot" ] || dur_fail "recomputed response differs from one-shot repro table3"
durctl shutdown || dur_fail "durable daemon shutdown failed"
wait "$dur_pid" || dur_fail "durable daemon exited non-zero"

echo "== serve observability smoke (access log, A/B identity, top) =="
obs_sock="target/ci-obs.sock"
obs_log="target/ci-obs-access.jsonl"
rm -f "$obs_log"
./target/release/repro serve --addr "unix:$obs_sock" --access-log "$obs_log" --jobs 2 --quiet &
obs_pid=$!
obsctl() {
  ./target/release/servectl --addr "unix:$obs_sock" --quiet "$@"
}
obs_fail() {
  echo "$1" >&2
  kill -9 "$obs_pid" 2>/dev/null || true
  exit 1
}
./target/release/servectl --addr "unix:$obs_sock" --quiet --connect-retries 50 ping \
  || obs_fail "observability daemon never became reachable"
cold="$(obsctl submit table3)" || obs_fail "cold table3 submit failed"
warm="$(obsctl submit table3)" || obs_fail "warm table3 submit failed"
# A/B determinism at zero tolerance: with the access log on, the served
# artifacts are byte-identical to the unlogged one-shot run —
# observability never touches the deterministic surface.
[ "$cold" = "$one_shot" ] || obs_fail "logged daemon output differs from one-shot repro table3"
[ "$cold" = "$warm" ] || obs_fail "warm hit differs from cold miss under --access-log"
obsctl top --count 1 | grep -q "serve top" || obs_fail "servectl top printed no dashboard header"
obsctl shutdown || obs_fail "observability daemon shutdown failed"
wait "$obs_pid" || obs_fail "observability daemon exited non-zero"
[ "$(wc -l < "$obs_log")" -eq 2 ] || obs_fail "expected exactly two access-log records"
sed -n 1p "$obs_log" | grep -q '"outcome":"miss"' || obs_fail "first record is not a miss"
sed -n 2p "$obs_log" | grep -q '"outcome":"hit"' || obs_fail "second record is not a hit"
for phase in accept_us queue_us lookup_us build_us persist_us respond_us; do
  [ "$(grep -c "\"$phase\":[0-9]" "$obs_log")" -eq 2 ] \
    || obs_fail "phase timing $phase missing or malformed in the access log"
done
./target/release/servectl tail "$obs_log" | grep -q "req-" \
  || obs_fail "servectl tail did not render the records"

echo "== perf gate (fresh BENCH_table3.json vs committed baseline) =="
# Tolerance is explicit: the simulators are deterministic, so 0 drift is
# expected. Override with TRIARCH_PERF_TOLERANCE=<fraction> or skip an
# intentional baseline move with TRIARCH_PERF_SKIP=1 (refresh the baseline
# via `repro -- bench --json BENCH_table3.json` in the same change).
cargo run --release -q -p triarch-bench --bin repro -- \
  bench target/BENCH_fresh.json --json >/dev/null 2>&1
TRIARCH_PERF_TOLERANCE="${TRIARCH_PERF_TOLERANCE:-0}" \
  cargo run --release -q -p triarch-bench --bin perfgate -- \
  BENCH_table3.json target/BENCH_fresh.json

echo "== perfgate rejects a malformed artifact =="
echo '{"schema_version": 1}' > target/BENCH_bad.json
if cargo run --release -q -p triarch-bench --bin perfgate -- \
  BENCH_table3.json target/BENCH_bad.json 2>/dev/null; then
  echo "perfgate accepted a schema-invalid artifact" >&2
  exit 1
fi

echo "== repro rejects unknown selectors and bad --jobs =="
if cargo run --release -q -p triarch-bench --bin repro -- no-such-exhibit 2>/dev/null; then
  echo "repro accepted an unknown selector" >&2
  exit 1
fi
if cargo run --release -q -p triarch-bench --bin repro -- --jobs 0 table1 2>/dev/null; then
  echo "repro accepted --jobs 0" >&2
  exit 1
fi
if cargo run --release -q -p triarch-bench --bin repro -- --json table3 2>/dev/null; then
  echo "repro accepted --json without the bench selector" >&2
  exit 1
fi
if cargo run --release -q -p triarch-bench --bin repro -- timeline --window 0 2>/dev/null; then
  echo "repro accepted --window 0" >&2
  exit 1
fi
if cargo run --release -q -p triarch-bench --bin repro -- --windows table1 2>/dev/null; then
  echo "repro accepted --windows without the profdiff selector" >&2
  exit 1
fi

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "CI OK"
