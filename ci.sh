#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
#
# Usage: ./ci.sh
#
# The workspace has no crates.io dependencies (rand/proptest/criterion are
# vendored under devstubs/), so every step below works offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== repro faultsweep smoke (deterministic, 2 campaigns) =="
out1="$(cargo run --release -q -p triarch-bench --bin repro -- faultsweep --campaigns 2)"
out2="$(cargo run --release -q -p triarch-bench --bin repro -- faultsweep --campaigns 2)"
echo "$out1"
if [ "$out1" != "$out2" ]; then
  echo "faultsweep is not deterministic" >&2
  exit 1
fi

echo "== repro rejects unknown selectors =="
if cargo run --release -q -p triarch-bench --bin repro -- no-such-exhibit 2>/dev/null; then
  echo "repro accepted an unknown selector" >&2
  exit 1
fi

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "CI OK"
