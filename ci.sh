#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
#
# Usage: ./ci.sh
#
# The workspace has no crates.io dependencies (rand/proptest/criterion are
# vendored under devstubs/), so every step below works offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "CI OK"
