#!/usr/bin/env bash
# Local CI gate — the same steps .github/workflows/ci.yml runs.
#
# Usage: ./ci.sh
#
# The workspace has no crates.io dependencies (rand/proptest/criterion are
# vendored under devstubs/), so every step below works offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (deny warnings) =="
cargo clippy --workspace --all-targets -- -D warnings

echo "== cargo clippy triarch-pool (deny unwrap/expect) =="
cargo clippy -p triarch-pool --all-targets -- -D warnings \
  -D clippy::unwrap_used -D clippy::expect_used

echo "== cargo build --release =="
cargo build --release --workspace

echo "== cargo test =="
cargo test -q --workspace

echo "== repro faultsweep smoke (deterministic, 2 campaigns) =="
out1="$(cargo run --release -q -p triarch-bench --bin repro -- faultsweep --campaigns 2)"
out2="$(cargo run --release -q -p triarch-bench --bin repro -- faultsweep --campaigns 2)"
echo "$out1"
if [ "$out1" != "$out2" ]; then
  echo "faultsweep is not deterministic" >&2
  exit 1
fi

echo "== parallel byte-identity smoke (--jobs 1 vs --jobs 2) =="
j1="$(cargo run --release -q -p triarch-bench --bin repro -- --jobs 1 table3 breakdowns 2>/dev/null)"
j2="$(cargo run --release -q -p triarch-bench --bin repro -- --jobs 2 table3 breakdowns 2>/dev/null)"
if [ "$j1" != "$j2" ]; then
  echo "table3/breakdowns output differs between --jobs 1 and --jobs 2" >&2
  exit 1
fi
f1="$(cargo run --release -q -p triarch-bench --bin repro -- --jobs 1 faultsweep --small --campaigns 2 2>/dev/null)"
f2="$(cargo run --release -q -p triarch-bench --bin repro -- --jobs 2 faultsweep --small --campaigns 2 2>/dev/null)"
if [ "$f1" != "$f2" ]; then
  echo "faultsweep output differs between --jobs 1 and --jobs 2" >&2
  exit 1
fi

echo "== dse smoke (small workloads, 2 workers) =="
dse_out="$(cargo run --release -q -p triarch-bench --bin repro -- dse --small --jobs 2 2>/dev/null)"
echo "$dse_out" | grep -q "Design-space exploration" || {
  echo "dse smoke produced no report" >&2
  exit 1
}
if echo "$dse_out" | grep -q "\[FAIL\]"; then
  echo "dse smoke reported a failing finding" >&2
  echo "$dse_out" >&2
  exit 1
fi

echo "== repro rejects unknown selectors and bad --jobs =="
if cargo run --release -q -p triarch-bench --bin repro -- no-such-exhibit 2>/dev/null; then
  echo "repro accepted an unknown selector" >&2
  exit 1
fi
if cargo run --release -q -p triarch-bench --bin repro -- --jobs 0 table1 2>/dev/null; then
  echo "repro accepted --jobs 0" >&2
  exit 1
fi

echo "== cargo doc (deny warnings) =="
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "CI OK"
